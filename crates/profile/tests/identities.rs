//! Cross-layer acceptance identities for the profiler.
//!
//! These tests tie the analysis layer to ground truth: hot-spot byte
//! totals must equal the structure-only volume replay on *both* backends,
//! the critical path must be contiguous and never exceed the simulated
//! makespan, and the wait-state report must account for every microsecond
//! of a deterministic DES run.

use pselinv_des::{simulate_profiled, simulate_traced, MachineConfig};
use pselinv_dist::taskgraph::{selinv_graph, GraphOptions};
use pselinv_dist::{distributed_selinv_traced, replay_volumes, DistOptions, Layout};
use pselinv_mpisim::Grid2D;
use pselinv_order::{analyze, AnalyzeOptions};
use pselinv_profile::{CriticalPath, HotspotReport, WaitReport};
use pselinv_sparse::gen;
use pselinv_trace::CollKind;
use pselinv_trees::{TreeBuilder, TreeScheme};
use std::sync::Arc;

fn layout_3x3() -> Layout {
    let w = gen::grid_laplacian_2d(12, 12);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    Layout::new(sf, Grid2D::new(3, 3))
}

fn flat_cfg() -> MachineConfig {
    MachineConfig {
        ranks_per_node: 1,
        jitter: 0.0,
        msg_overhead: 0.0,
        task_overhead: 0.0,
        latency_intra: 0.0,
        latency_inter: 0.0,
        cpu_per_msg: 0.0,
        nic_per_node: false,
        ..Default::default()
    }
}

#[test]
fn hotspot_bytes_match_replay_on_des_backend() {
    let layout = layout_3x3();
    for scheme in [TreeScheme::Flat, TreeScheme::Binary, TreeScheme::ShiftedBinary] {
        let opts = GraphOptions { scheme, ..Default::default() };
        let g = selinv_graph(&layout, &opts);
        let (_, trace) =
            simulate_traced(&g, MachineConfig { seed: 2, ..Default::default() }, "id/des");
        let hs = HotspotReport::from_trace(&trace, (3, 3));
        let rep = replay_volumes(&layout, TreeBuilder::new(opts.scheme, opts.seed));
        let cb = hs.kinds.iter().find(|k| k.coll == CollKind::ColBcast).unwrap();
        assert_eq!(cb.sent_bytes, rep.col_bcast_sent, "{scheme:?}");
        let rr = hs.kinds.iter().find(|k| k.coll == CollKind::RowReduce).unwrap();
        assert_eq!(rr.recv_bytes, rep.row_reduce_received, "{scheme:?}");
    }
}

#[test]
fn hotspot_bytes_match_replay_on_mpisim_backend() {
    let w = gen::grid_laplacian_2d(10, 10);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    let f = pselinv_factor::factorize(&w.matrix, sf.clone()).unwrap();
    let grid = Grid2D::new(3, 3);
    let opts = DistOptions {
        scheme: TreeScheme::ShiftedBinary,
        seed: 7,
        threads: 1,
        lookahead: 1,
        ..Default::default()
    };
    let (_, _, trace) = distributed_selinv_traced(&f, grid, &opts, "id/mpisim");
    let hs = HotspotReport::from_trace(&trace, (3, 3));
    let layout = Layout::new(sf, grid);
    let rep = replay_volumes(&layout, TreeBuilder::new(opts.scheme, opts.seed));
    let cb = hs.kinds.iter().find(|k| k.coll == CollKind::ColBcast).unwrap();
    assert_eq!(cb.sent_bytes, rep.col_bcast_sent);
    let rr = hs.kinds.iter().find(|k| k.coll == CollKind::RowReduce).unwrap();
    assert_eq!(rr.recv_bytes, rep.row_reduce_received);
    // The structure-only report exposes the same two vectors.
    let hv = HotspotReport::from_volumes("id/volumes", &rep);
    assert_eq!(hv.primary_load(CollKind::ColBcast).unwrap(), &cb.sent_bytes[..]);
    assert_eq!(hv.primary_load(CollKind::RowReduce).unwrap(), &rr.recv_bytes[..]);
}

#[test]
fn critical_path_is_contiguous_and_bounded_by_makespan() {
    let layout = layout_3x3();
    for scheme in [TreeScheme::Flat, TreeScheme::ShiftedBinary] {
        let g = selinv_graph(&layout, &GraphOptions { scheme, ..Default::default() });
        // A realistic machine: contention, jitter, per-message CPU cost.
        let cfg = MachineConfig { seed: 11, ranks_per_node: 4, ..Default::default() };
        let (res, _, prof) = simulate_profiled(&g, cfg, "id/cp", &[]);
        let cp = CriticalPath::extract(&g, &prof);
        assert_eq!(cp.steps[0].start_us, 0, "{scheme:?}");
        for w in cp.steps.windows(2) {
            assert_eq!(w[0].end_us, w[1].start_us, "{scheme:?}: gap in path");
        }
        assert_eq!(cp.length_us(), cp.makespan_us, "{scheme:?}");
        // The last task end can precede trailing message deliveries, so
        // the path length is bounded by (not equal to) the makespan.
        let makespan_us = (res.makespan * 1e6) as u64;
        assert!(
            cp.length_us() <= makespan_us + 1,
            "{scheme:?}: {} > {makespan_us}",
            cp.length_us()
        );
        assert!(cp.length_us() > 0);
        assert!(!cp.rank_sequence().is_empty());
    }
}

#[test]
fn wait_report_accounts_for_every_microsecond_on_flat_des() {
    let layout = layout_3x3();
    let g = selinv_graph(&layout, &GraphOptions::default());
    let (_, trace, prof) = simulate_profiled(&g, flat_cfg(), "id/wait", &[]);
    let rep = WaitReport::from_trace(&trace);
    let rank_end = prof.rank_end_us(&g);
    for r in &rep.ranks {
        assert_eq!(
            r.span_us + r.total_wait_us(),
            rank_end[r.rank],
            "rank {}: busy + wait must cover the whole timeline",
            r.rank
        );
    }
    // Something must have waited on a 3x3 grid, and the report renders.
    assert!(rep.ranks.iter().map(|r| r.total_wait_us()).sum::<u64>() > 0);
    assert!(rep.dominant_wait_kind().is_some());
    assert!(!rep.ascii().is_empty());
}
