//! Acceptance tests for the causal-observability layer: every traced run
//! in the suite — synchronous mpisim, asynchronous pipelined mpisim,
//! chaos-seeded mpisim and the DES backend — must reconstruct into a
//! valid happens-before order (no cycles, strictly monotone Lamport
//! clocks, unique `(sender, idx)` consumption), and on the DES backend
//! the longest blame chain's wait total must telescope exactly to the
//! total late-sender wait measured in the trace.

use pselinv_chaos::{FaultPlan, FaultSpec};
use pselinv_des::{simulate_profiled, simulate_traced, MachineConfig};
use pselinv_dist::taskgraph::{selinv_graph, GraphOptions, TaskGraph, TaskKind};
use pselinv_dist::{distributed_selinv_traced, try_distributed_selinv_traced, DistOptions, Layout};
use pselinv_factor::LdlFactor;
use pselinv_mpisim::{Grid2D, RunOptions};
use pselinv_order::{analyze, AnalyzeOptions};
use pselinv_profile::{CausalChains, CriticalPath};
use pselinv_sparse::gen;
use pselinv_trace::{pack_task_tag, CollKind, EventKind, Trace};
use pselinv_trees::TreeScheme;
use std::sync::Arc;
use std::time::Duration;

fn small_factor() -> LdlFactor {
    let w = gen::grid_laplacian_2d(7, 7);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    pselinv_factor::factorize(&w.matrix, sf).unwrap()
}

fn opts(scheme: TreeScheme, lookahead: usize) -> DistOptions {
    DistOptions { scheme, seed: 7, threads: 1, lookahead, ..Default::default() }
}

fn assert_valid(trace: &Trace, what: &str) -> CausalChains {
    let cc = CausalChains::from_trace(trace);
    assert!(cc.is_valid(), "{what}: causal violations: {:#?}", cc.violations());
    assert!(cc.matched_edges() > 0, "{what}: no matched send/recv edges");
    cc
}

/// Sum of every late-sender wait stamped in the trace, across all ranks
/// and collective kinds.
fn total_trace_wait_us(trace: &Trace) -> u64 {
    trace
        .ranks
        .iter()
        .flat_map(|r| r.events.iter())
        .map(|e| match e.kind {
            EventKind::Wait { wait_us, .. } => wait_us,
            _ => 0,
        })
        .sum()
}

#[test]
fn sync_run_reconstructs_a_valid_causal_order() {
    let f = small_factor();
    for scheme in [TreeScheme::Flat, TreeScheme::ShiftedBinary] {
        let (_, _, trace) =
            distributed_selinv_traced(&f, Grid2D::new(2, 2), &opts(scheme, 1), "causal-sync");
        assert_valid(&trace, &format!("sync {scheme:?}"));
    }
}

#[test]
fn async_run_reconstructs_a_valid_causal_order() {
    let f = small_factor();
    for lookahead in [2usize, usize::MAX] {
        let (_, _, trace) = distributed_selinv_traced(
            &f,
            Grid2D::new(2, 3),
            &opts(TreeScheme::ShiftedBinary, lookahead),
            "causal-async",
        );
        // The async engine reorders communication aggressively; the causal
        // layer must still linearize it without contradiction.
        assert_valid(&trace, &format!("async lookahead={lookahead}"));
    }
}

#[test]
fn chaos_runs_reconstruct_valid_causal_orders() {
    let f = small_factor();
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan::new(seed).with_default(FaultSpec {
            delay_us: 40,
            jitter_us: 40,
            duplicate_permille: 250,
            reorder_permille: 250,
            ..FaultSpec::default()
        });
        let run_opts = RunOptions {
            watchdog: Some(Duration::from_secs(30)),
            poll: Duration::from_millis(2),
            faults: Some(plan),
            telemetry: None,
            ..RunOptions::default()
        };
        let (_, _, trace) = try_distributed_selinv_traced(
            &f,
            Grid2D::new(2, 2),
            &opts(TreeScheme::ShiftedBinary, 2),
            &run_opts,
            "causal-chaos",
        )
        .expect("crash-free chaos plan must complete");
        assert_valid(&trace, &format!("chaos seed {seed}"));
    }
}

/// A machine with no latency, jitter or overheads: transfers of a few
/// bytes land in the same microsecond they are sent, so every late start
/// is pure late-sender wait.
fn flat_cfg() -> MachineConfig {
    MachineConfig {
        ranks_per_node: 1,
        jitter: 0.0,
        msg_overhead: 0.0,
        task_overhead: 0.0,
        latency_intra: 0.0,
        latency_inter: 0.0,
        cpu_per_msg: 0.0,
        nic_per_node: false,
        ..Default::default()
    }
}

/// Hand-built graph: tasks as `(rank, flops, coll)`, edges as
/// `(from, to, bytes)`.
fn graph(nranks: usize, tasks: &[(usize, f64, CollKind)], edges: &[(u32, u32, u64)]) -> TaskGraph {
    let n = tasks.len();
    let mut deps = vec![0u32; n];
    let mut ptr = vec![0u32; n + 1];
    for &(_, to, _) in edges {
        deps[to as usize] += 1;
    }
    for &(from, _, _) in edges {
        ptr[from as usize + 1] += 1;
    }
    for i in 0..n {
        ptr[i + 1] += ptr[i];
    }
    let mut heads = ptr[..n].to_vec();
    let mut succ = vec![0u32; edges.len()];
    let mut bytes = vec![0u64; edges.len()];
    for &(from, to, b) in edges {
        let s = heads[from as usize] as usize;
        heads[from as usize] += 1;
        succ[s] = to;
        bytes[s] = b;
    }
    TaskGraph {
        nranks,
        task_prio: vec![0; n],
        task_kind: vec![TaskKind::Compute; n],
        task_tag: tasks.iter().map(|&(_, _, c)| pack_task_tag(c, 0)).collect(),
        task_deps: deps,
        task_rank: tasks.iter().map(|&(r, _, _)| r as u32).collect(),
        task_flops: tasks.iter().map(|&(_, f, _)| f).collect(),
        succ_ptr: ptr,
        succ,
        succ_bytes: bytes,
    }
}

/// The telescoping identity on the DES backend: on a serial cross-rank
/// chain every task's wait has a message cause and the blame links join
/// end-to-end, so the longest chain's wait total equals the *entire*
/// late-sender wait measured in the trace — no wait is unexplained and
/// none is double-counted.
#[test]
fn des_longest_chain_telescopes_to_total_late_sender_wait() {
    // A0 -> B1 -> C0 -> D1: 1-second tasks ping-ponging between two
    // ranks. Each receiving rank goes idle the moment its previous task
    // ends, so each hop contributes exactly one second of late-sender
    // wait with a recorded message cause.
    let g = graph(
        2,
        &[
            (0, 10e9, CollKind::Compute),
            (1, 10e9, CollKind::ColBcast),
            (0, 10e9, CollKind::RowReduce),
            (1, 10e9, CollKind::DiagReduce),
        ],
        &[(0, 1, 8), (1, 2, 8), (2, 3, 8)],
    );
    let (res, trace, prof) = simulate_profiled(&g, flat_cfg(), "causal-des", &[]);
    assert!((res.makespan - 4.0).abs() < 1e-6, "makespan {}", res.makespan);

    let cc = assert_valid(&trace, "des serial chain");
    let longest = cc.longest().expect("chain exists");
    let total = total_trace_wait_us(&trace);
    assert!(total > 0, "chain must accumulate real wait");
    assert_eq!(
        longest.wait_us(),
        total,
        "longest blame chain must telescope to the full measured late-sender wait"
    );
    assert_eq!(longest.links.len(), 3, "one blame link per cross-rank hop");
    // The chain visits the ranks in the reverse of the schedule's hops,
    // matching the critical path's rank sequence.
    let cp = CriticalPath::extract(&g, &prof);
    let mut chain_ranks: Vec<u32> = longest.rank_sequence().iter().map(|&r| r as u32).collect();
    chain_ranks.reverse();
    let cp_ranks = cp.rank_sequence();
    assert!(
        cp_ranks.windows(chain_ranks.len()).any(|w| w == chain_ranks.as_slice())
            || chain_ranks == cp_ranks,
        "chain ranks {chain_ranks:?} must appear along the critical path {cp_ranks:?}"
    );
}

#[test]
fn des_traced_run_on_real_taskgraph_is_valid() {
    let f = small_factor();
    let layout = Layout::new(f.symbolic.clone(), Grid2D::new(2, 2));
    let g = selinv_graph(&layout, &GraphOptions::default());
    let (_, trace) = simulate_traced(&g, MachineConfig::default(), "causal-des-real");
    assert_valid(&trace, "des real taskgraph");
}
