//! Critical-path extraction from a simulated schedule.
//!
//! The DES engine records, for every task, when it became ready, when it
//! ran, and *which* predecessor bound its start time: the last task on
//! the same core (the rank was busy), a local dependency, or a message
//! (with its injection and delivery times). Walking those binding
//! predecessors backward from the last task to finish yields the
//! critical path — the single chain of task executions, message
//! transfers and idle gaps whose total length *is* the makespan. Its
//! per-kind breakdown answers the scalability question directly: is the
//! run bound by compute, by Col-Bcast forwarding, by Row-Reduce, or by
//! waiting?

use pselinv_des::{CritPred, SimProfile};
use pselinv_dist::taskgraph::{TaskGraph, TaskId};
use pselinv_trace::{unpack_task_tag, CollKind, Json};

/// What one critical-path segment was doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// A task executing on a core.
    Task,
    /// A message in flight (send NIC + network + receive NIC).
    Transfer,
    /// The destination core idle with nothing runnable.
    Wait,
}

impl StepKind {
    pub fn name(self) -> &'static str {
        match self {
            StepKind::Task => "task",
            StepKind::Transfer => "transfer",
            StepKind::Wait => "wait",
        }
    }
}

/// One segment of the critical path, in forward time order.
#[derive(Clone, Copy, Debug)]
pub struct CritStep {
    pub kind: StepKind,
    /// Collective kind of the task executed / being enabled.
    pub coll: CollKind,
    /// The executed task ([`StepKind::Task`] only).
    pub task: Option<TaskId>,
    /// Rank the segment is attributed to (destination rank for
    /// transfers).
    pub rank: u32,
    pub start_us: u64,
    pub end_us: u64,
}

impl CritStep {
    pub fn dur_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// The critical path of one simulated run.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Segments in forward time order; contiguous from 0 to the
    /// makespan.
    pub steps: Vec<CritStep>,
    /// End time of the last task (µs) — the simulated makespan.
    pub makespan_us: u64,
}

impl CriticalPath {
    /// Extracts the critical path of the schedule recorded in `prof`.
    ///
    /// Starting from the task with the latest end time, each step's
    /// binding predecessor is followed backward: a [`CritPred::Msg`]
    /// contributes a transfer segment, and any gap the recorded
    /// boundaries do not explain becomes an explicit wait segment, so
    /// the returned path is contiguous and its length equals the
    /// makespan exactly.
    pub fn extract(graph: &TaskGraph, prof: &SimProfile) -> Self {
        let n = graph.num_tasks();
        assert!(n > 0, "empty task graph has no critical path");
        assert_eq!(prof.task_end_us.len(), n, "profile does not match graph");
        let mut t: TaskId = 0;
        for i in 1..n {
            if prof.task_end_us[i] > prof.task_end_us[t as usize] {
                t = i as TaskId;
            }
        }
        let makespan_us = prof.task_end_us[t as usize];
        let mut steps = Vec::new();
        loop {
            let ti = t as usize;
            let rank = graph.task_rank[ti];
            let (coll, _) = unpack_task_tag(graph.task_tag[ti]);
            let start = prof.task_start_us[ti];
            steps.push(CritStep {
                kind: StepKind::Task,
                coll,
                task: Some(t),
                rank,
                start_us: start,
                end_us: prof.task_end_us[ti],
            });
            let gap = |steps: &mut Vec<CritStep>, from: u64| {
                if start > from {
                    steps.push(CritStep {
                        kind: StepKind::Wait,
                        coll,
                        task: None,
                        rank,
                        start_us: from,
                        end_us: start,
                    });
                }
            };
            match prof.pred[ti] {
                CritPred::None => {
                    gap(&mut steps, 0);
                    break;
                }
                CritPred::Dep(p) | CritPred::RankPrev(p) => {
                    gap(&mut steps, prof.task_end_us[p as usize]);
                    t = p;
                }
                CritPred::Msg { src_task, sent_us, deliver_us } => {
                    gap(&mut steps, deliver_us);
                    if deliver_us > sent_us {
                        steps.push(CritStep {
                            kind: StepKind::Transfer,
                            coll,
                            task: None,
                            rank,
                            start_us: sent_us,
                            end_us: deliver_us,
                        });
                    }
                    // The message is injected when its producer finishes,
                    // so this closes the chain back to src_task with no
                    // gap; guard anyway so the path stays contiguous.
                    let pe = prof.task_end_us[src_task as usize];
                    if sent_us > pe {
                        steps.push(CritStep {
                            kind: StepKind::Wait,
                            coll,
                            task: None,
                            rank: graph.task_rank[src_task as usize],
                            start_us: pe,
                            end_us: sent_us,
                        });
                    }
                    t = src_task;
                }
            }
        }
        steps.reverse();
        CriticalPath { steps, makespan_us }
    }

    /// Total length of the path (µs); equals [`CriticalPath::makespan_us`]
    /// because the path is contiguous.
    pub fn length_us(&self) -> u64 {
        self.steps.iter().map(CritStep::dur_us).sum()
    }

    /// Time spent executing tasks of `coll` on the path.
    pub fn task_us(&self, coll: CollKind) -> u64 {
        self.steps
            .iter()
            .filter(|s| s.kind == StepKind::Task && s.coll == coll)
            .map(CritStep::dur_us)
            .sum()
    }

    /// Time spent in message transfers on the path.
    pub fn transfer_us(&self) -> u64 {
        self.steps.iter().filter(|s| s.kind == StepKind::Transfer).map(CritStep::dur_us).sum()
    }

    /// Idle time on the path.
    pub fn wait_us(&self) -> u64 {
        self.steps.iter().filter(|s| s.kind == StepKind::Wait).map(CritStep::dur_us).sum()
    }

    /// Ranks the path visits (task segments only, consecutive
    /// duplicates collapsed).
    pub fn rank_sequence(&self) -> Vec<u32> {
        let mut seq: Vec<u32> = Vec::new();
        for s in &self.steps {
            if s.kind == StepKind::Task && seq.last() != Some(&s.rank) {
                seq.push(s.rank);
            }
        }
        seq
    }

    /// Per-category breakdown as `(name, µs)` pairs: one `task:<kind>`
    /// entry per active kind, then `transfer` and `wait`.
    pub fn breakdown(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for coll in CollKind::ALL {
            let us = self.task_us(coll);
            if us > 0 || self.steps.iter().any(|s| s.kind == StepKind::Task && s.coll == coll) {
                out.push((format!("task:{}", coll.name()), us));
            }
        }
        out.push(("transfer".to_string(), self.transfer_us()));
        out.push(("wait".to_string(), self.wait_us()));
        out
    }

    /// ASCII summary: length vs makespan, breakdown percentages, and the
    /// rank sequence.
    pub fn ascii(&self) -> String {
        let len = self.length_us().max(1);
        let mut out = format!(
            "critical path: {} segments, {} µs (makespan {} µs)\n",
            self.steps.len(),
            self.length_us(),
            self.makespan_us
        );
        for (name, us) in self.breakdown() {
            out.push_str(&format!(
                "  {name:<18} {us:>12} µs  ({:5.1}%)\n",
                us as f64 * 100.0 / len as f64
            ));
        }
        let seq = self.rank_sequence();
        let shown: Vec<String> = seq.iter().take(24).map(u32::to_string).collect();
        let ell = if seq.len() > 24 { " -> ..." } else { "" };
        out.push_str(&format!(
            "  rank sequence ({} hops): {}{}\n",
            seq.len().saturating_sub(1),
            shown.join(" -> "),
            ell
        ));
        out
    }

    /// JSON rendering.
    pub fn json(&self) -> Json {
        let steps = self
            .steps
            .iter()
            .map(|s| {
                Json::obj([
                    ("kind", s.kind.name().into()),
                    ("coll", s.coll.name().into()),
                    ("task", s.task.map_or(Json::Null, |t| Json::from(t as u64))),
                    ("rank", (s.rank as u64).into()),
                    ("start_us", s.start_us.into()),
                    ("end_us", s.end_us.into()),
                ])
            })
            .collect();
        let breakdown =
            Json::Obj(self.breakdown().into_iter().map(|(k, v)| (k, Json::from(v))).collect());
        Json::obj([
            ("makespan_us", self.makespan_us.into()),
            ("length_us", self.length_us().into()),
            ("breakdown", breakdown),
            (
                "rank_sequence",
                Json::Arr(self.rank_sequence().iter().map(|&r| Json::from(r as u64)).collect()),
            ),
            ("steps", Json::Arr(steps)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_des::{simulate_profiled, MachineConfig};
    use pselinv_dist::taskgraph::TaskKind;
    use pselinv_trace::pack_task_tag;

    fn flat_cfg() -> MachineConfig {
        MachineConfig {
            ranks_per_node: 1,
            jitter: 0.0,
            msg_overhead: 0.0,
            task_overhead: 0.0,
            latency_intra: 0.0,
            latency_inter: 0.0,
            cpu_per_msg: 0.0,
            nic_per_node: false,
            ..Default::default()
        }
    }

    /// Hand-built graph: tasks as `(rank, flops, coll)`, edges as
    /// `(from, to, bytes)`.
    fn graph(
        nranks: usize,
        tasks: &[(usize, f64, CollKind)],
        edges: &[(u32, u32, u64)],
    ) -> TaskGraph {
        let n = tasks.len();
        let mut deps = vec![0u32; n];
        let mut ptr = vec![0u32; n + 1];
        for &(_, to, _) in edges {
            deps[to as usize] += 1;
        }
        for &(from, _, _) in edges {
            ptr[from as usize + 1] += 1;
        }
        for i in 0..n {
            ptr[i + 1] += ptr[i];
        }
        let mut heads = ptr[..n].to_vec();
        let mut succ = vec![0u32; edges.len()];
        let mut bytes = vec![0u64; edges.len()];
        for &(from, to, b) in edges {
            let s = heads[from as usize] as usize;
            heads[from as usize] += 1;
            succ[s] = to;
            bytes[s] = b;
        }
        TaskGraph {
            nranks,
            task_prio: vec![0; n],
            task_kind: vec![TaskKind::Compute; n],
            task_tag: tasks.iter().map(|&(_, _, c)| pack_task_tag(c, 0)).collect(),
            task_deps: deps,
            task_rank: tasks.iter().map(|&(r, _, _)| r as u32).collect(),
            task_flops: tasks.iter().map(|&(_, f, _)| f).collect(),
            succ_ptr: ptr,
            succ,
            succ_bytes: bytes,
        }
    }

    fn assert_contiguous(cp: &CriticalPath) {
        assert!(!cp.steps.is_empty());
        assert_eq!(cp.steps[0].start_us, 0, "path must start at t=0");
        for w in cp.steps.windows(2) {
            assert_eq!(w[0].end_us, w[1].start_us, "gap between {:?} and {:?}", w[0], w[1]);
        }
        assert_eq!(cp.steps.last().unwrap().end_us, cp.makespan_us);
    }

    #[test]
    fn serial_chain_path_equals_makespan() {
        // 1 s + 2 s + 1 s on one rank: the whole run is the path.
        let g = graph(
            1,
            &[
                (0, 10e9, CollKind::Compute),
                (0, 20e9, CollKind::Compute),
                (0, 10e9, CollKind::Compute),
            ],
            &[(0, 1, 0), (1, 2, 0)],
        );
        let (res, _, prof) = simulate_profiled(&g, flat_cfg(), "cp/serial", &[]);
        let cp = CriticalPath::extract(&g, &prof);
        assert_contiguous(&cp);
        assert_eq!(cp.length_us(), cp.makespan_us);
        assert_eq!(cp.makespan_us, (res.makespan * 1e6) as u64);
        assert_eq!(cp.steps.len(), 3);
        assert!(cp.steps.iter().all(|s| s.kind == StepKind::Task));
        assert_eq!(cp.task_us(CollKind::Compute), cp.length_us());
        assert_eq!(cp.rank_sequence(), vec![0]);
    }

    #[test]
    fn cross_rank_message_appears_as_transfer() {
        // rank 0 computes 1 s, ships 3 GB (2 s on the wire with
        // store-and-forward NICs), rank 1 computes 1 s.
        let g = graph(
            2,
            &[(0, 10e9, CollKind::Compute), (1, 10e9, CollKind::ColBcast)],
            &[(0, 1, 3_000_000_000)],
        );
        let (res, _, prof) = simulate_profiled(&g, flat_cfg(), "cp/xfer", &[]);
        let cp = CriticalPath::extract(&g, &prof);
        assert_contiguous(&cp);
        assert_eq!(cp.length_us(), cp.makespan_us);
        assert_eq!(cp.makespan_us, (res.makespan * 1e6) as u64);
        let xfer = cp.transfer_us();
        assert!((1_999_000..=2_001_000).contains(&xfer), "transfer {xfer}");
        assert_eq!(cp.rank_sequence(), vec![0, 1]);
        // The transfer is attributed to the consuming task's kind lane in
        // the breakdown.
        let names: Vec<String> = cp.breakdown().into_iter().map(|(k, _)| k).collect();
        assert!(names.contains(&"transfer".to_string()));
        assert!(names.contains(&"task:ColBcast".to_string()));
    }

    #[test]
    fn path_picks_the_longer_branch() {
        // Fork: a cheap branch on rank 1 and an expensive branch on
        // rank 2, joining on rank 0. The path must route through rank 2.
        let g = graph(
            3,
            &[
                (0, 10e9, CollKind::Compute),
                (1, 10e9, CollKind::Compute),
                (2, 50e9, CollKind::Compute),
                (0, 10e9, CollKind::Compute),
            ],
            &[(0, 1, 0), (0, 2, 0), (1, 3, 0), (2, 3, 0)],
        );
        let (_, _, prof) = simulate_profiled(&g, flat_cfg(), "cp/fork", &[]);
        let cp = CriticalPath::extract(&g, &prof);
        assert_contiguous(&cp);
        assert_eq!(cp.length_us(), cp.makespan_us);
        let tasks: Vec<TaskId> = cp.steps.iter().filter_map(|s| s.task).collect();
        assert!(tasks.contains(&2), "path skipped the slow branch: {tasks:?}");
        assert!(!tasks.contains(&1), "path took the fast branch: {tasks:?}");
    }

    #[test]
    fn ascii_and_json_are_nonempty_and_consistent() {
        let g = graph(
            2,
            &[(0, 10e9, CollKind::Compute), (1, 10e9, CollKind::RowReduce)],
            &[(0, 1, 1_000_000)],
        );
        let (_, _, prof) = simulate_profiled(&g, flat_cfg(), "cp/render", &[]);
        let cp = CriticalPath::extract(&g, &prof);
        let text = cp.ascii();
        assert!(text.contains("critical path:"));
        assert!(text.contains("rank sequence"));
        let doc = Json::parse(&cp.json().to_string_pretty()).unwrap();
        assert_eq!(
            doc.get("length_us").unwrap().as_f64(),
            doc.get("makespan_us").unwrap().as_f64()
        );
        let steps = doc.get("steps").unwrap().as_arr().unwrap();
        assert!(!steps.is_empty());
        // Breakdown entries sum to the path length.
        let Json::Obj(bd) = doc.get("breakdown").unwrap() else {
            panic!("breakdown not an object")
        };
        let sum: f64 = bd.iter().map(|(_, v)| v.as_f64().unwrap()).sum();
        assert_eq!(sum, doc.get("length_us").unwrap().as_f64().unwrap());
    }
}
