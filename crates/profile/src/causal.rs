//! Happens-before reconstruction and blame-chain extraction from the
//! causal stamps both backends put on every message.
//!
//! Every traced message carries the sender's Lamport clock and a
//! per-sender monotonic send index, and every consumed receive records the
//! merged clock plus the matching send's `(rank, idx)` provenance
//! ([`EventKind::MsgSend`] / [`EventKind::MsgRecv`]). [`CausalChains`]
//! rebuilds the happens-before relation from those stamps and does two
//! things with it:
//!
//! * **Validation** — per-rank clock monotonicity, recv-after-send clock
//!   ordering, unique consumption of each send, and an explicit
//!   topological check of the whole event graph. Any violation means the
//!   runtime delivered or accounted messages out of causal order — a free
//!   race/ordering detector for the async engine, checked on every traced
//!   run in the test suite.
//! * **Blame chains** — for each late-sender wait, the upstream chain of
//!   waits that explains it: the wait names the `(sender, idx)` of the
//!   message that ended it; that send's rank in turn records which wait
//!   *it* was last stalled by before issuing the send; and so on. The
//!   chain's summed wait time is the serialized stall the terminal wait
//!   sits at the end of, attributed per `(CollKind, supernode)` — the
//!   "which upstream chain made this rank late" question the per-rank
//!   wait-state report cannot answer.
//!
//! [`EventKind::MsgSend`]: pselinv_trace::EventKind::MsgSend
//! [`EventKind::MsgRecv`]: pselinv_trace::EventKind::MsgRecv

use pselinv_trace::{CollKind, EventKind, Json, Trace, NO_KEY};
use std::collections::HashMap;

/// Renders a span key for humans: supernode index, or `-` for
/// [`NO_KEY`] (events outside any keyed collective).
fn key_str(key: u64) -> String {
    if key == NO_KEY {
        "-".to_string()
    } else {
        key.to_string()
    }
}

/// One wait on one rank, as a link of a blame chain (upstream first).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlameLink {
    /// Rank that waited.
    pub rank: usize,
    /// Kind the wait was attributed to.
    pub coll: CollKind,
    /// Supernode key of the wait span.
    pub key: u64,
    /// Late-sender component of the wait (µs).
    pub wait_us: u64,
    /// Transfer component (µs).
    pub transfer_us: u64,
    /// When the wait was posted (trace timestamp, µs).
    pub ts_us: u64,
}

/// A chain of causally linked waits, upstream (root cause) first. The
/// terminal link is the late-sender wait the chain explains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlameChain {
    pub links: Vec<BlameLink>,
}

impl BlameChain {
    /// Summed late-sender wait along the chain (µs).
    pub fn wait_us(&self) -> u64 {
        self.links.iter().map(|l| l.wait_us).sum()
    }

    /// The wait the chain terminates in.
    pub fn terminal(&self) -> &BlameLink {
        self.links.last().expect("blame chain has at least one link")
    }

    /// Ranks the chain passes through, upstream first, consecutive
    /// duplicates collapsed.
    pub fn rank_sequence(&self) -> Vec<usize> {
        let mut seq: Vec<usize> = Vec::new();
        for l in &self.links {
            if seq.last() != Some(&l.rank) {
                seq.push(l.rank);
            }
        }
        seq
    }
}

/// Internal: one recorded send, located by `(rank, idx)`.
#[derive(Clone, Copy, Debug)]
struct SendRec {
    /// Position in the sender rank's event list.
    pos: usize,
    clock: u64,
    /// Destination rank the send named.
    peer: usize,
}

/// Internal: one wait span.
#[derive(Clone, Copy, Debug)]
struct WaitRec {
    rank: usize,
    /// Position in the rank's event list.
    pos: usize,
    coll: CollKind,
    key: u64,
    wait_us: u64,
    transfer_us: u64,
    ts_us: u64,
    cause: Option<(usize, u64)>,
}

/// The reconstructed causal structure of one traced run.
#[derive(Clone, Debug)]
pub struct CausalChains {
    /// Human-readable consistency violations (empty for a causally clean
    /// run).
    violations: Vec<String>,
    /// Blame chains for every late-sender wait, longest summed wait first.
    chains: Vec<BlameChain>,
    /// Total late-sender wait across the whole trace (µs) — the quantity
    /// the chains partition blame over.
    total_wait_us: u64,
    /// Messages matched send→recv.
    matched_edges: usize,
}

impl CausalChains {
    /// Reconstructs and validates happens-before from `trace`, then
    /// extracts the blame chains.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut violations = Vec::new();

        // Index sends, receives and waits per rank, preserving each rank's
        // recorded order (program order on that rank).
        let mut sends: HashMap<(usize, u64), SendRec> = HashMap::new();
        let mut recvs: Vec<(usize, usize, usize, u64, u64)> = Vec::new(); // (rank, pos, peer, idx, clock)
        let mut waits: Vec<WaitRec> = Vec::new();
        let mut total_wait_us = 0u64;
        for rt in &trace.ranks {
            let mut last_clock: Option<u64> = None;
            for (pos, e) in rt.events.iter().enumerate() {
                match e.kind {
                    EventKind::MsgSend { peer, clock, idx, .. } => {
                        if last_clock.is_some_and(|c| clock <= c) {
                            violations.push(format!(
                                "rank {}: send clk={clock} at event {pos} does not exceed \
                                 the previous message clock {}",
                                rt.rank,
                                last_clock.unwrap()
                            ));
                        }
                        last_clock = Some(clock);
                        if sends.insert((rt.rank, idx), SendRec { pos, clock, peer }).is_some() {
                            violations.push(format!("rank {}: duplicate send idx {idx}", rt.rank));
                        }
                    }
                    EventKind::MsgRecv { peer, clock, idx, .. } => {
                        if last_clock.is_some_and(|c| clock <= c) {
                            violations.push(format!(
                                "rank {}: recv clk={clock} at event {pos} does not exceed \
                                 the previous message clock {}",
                                rt.rank,
                                last_clock.unwrap()
                            ));
                        }
                        last_clock = Some(clock);
                        recvs.push((rt.rank, pos, peer, idx, clock));
                    }
                    EventKind::Wait { coll, key, wait_us, transfer_us, cause } => {
                        total_wait_us += wait_us;
                        waits.push(WaitRec {
                            rank: rt.rank,
                            pos,
                            coll,
                            key,
                            wait_us,
                            transfer_us,
                            ts_us: e.ts_us,
                            cause,
                        });
                    }
                    _ => {}
                }
            }
        }

        // Cross-rank edges: every consumed receive must point at a send
        // with a strictly smaller clock, and no send may be consumed
        // twice (a consumed injected duplicate would show up here).
        let mut consumed: HashMap<(usize, u64), usize> = HashMap::new();
        let mut edges: Vec<((usize, usize), (usize, usize))> = Vec::new();
        for &(rank, pos, peer, idx, clock) in &recvs {
            match sends.get(&(peer, idx)) {
                None => violations
                    .push(format!("rank {rank}: recv of {peer}:{idx} has no matching send event")),
                Some(s) => {
                    if s.peer != rank {
                        violations.push(format!(
                            "rank {rank}: consumed send {peer}:{idx} addressed to rank {}",
                            s.peer
                        ));
                    }
                    if clock <= s.clock {
                        violations.push(format!(
                            "rank {rank}: recv of {peer}:{idx} has clk={clock} <= send \
                             clk={}",
                            s.clock
                        ));
                    }
                    edges.push(((peer, s.pos), (rank, pos)));
                }
            }
            if let Some(prev) = consumed.insert((peer, idx), rank) {
                violations
                    .push(format!("send {peer}:{idx} consumed twice (ranks {prev} and {rank})"));
            }
        }

        // Belt and braces: an explicit topological check over program
        // order + message edges. Monotone clocks already imply acyclicity;
        // this verifies it without trusting the stamps.
        if let Some(cycle_at) = find_cycle(trace, &edges) {
            violations.push(format!(
                "happens-before graph has a cycle through rank {} event {}",
                cycle_at.0, cycle_at.1
            ));
        }

        let chains = extract_chains(&sends, &waits);
        CausalChains { violations, chains, total_wait_us, matched_edges: edges.len() }
    }

    /// Whether the trace is causally consistent.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }

    /// The recorded consistency violations (empty for a clean run).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// All blame chains, longest summed wait first (one per late-sender
    /// wait in the trace).
    pub fn chains(&self) -> &[BlameChain] {
        &self.chains
    }

    /// The chain with the largest summed wait.
    pub fn longest(&self) -> Option<&BlameChain> {
        self.chains.first()
    }

    /// The `k` longest chains.
    pub fn top(&self, k: usize) -> &[BlameChain] {
        &self.chains[..k.min(self.chains.len())]
    }

    /// Total late-sender wait across the trace (µs).
    pub fn total_wait_us(&self) -> u64 {
        self.total_wait_us
    }

    /// Number of receives matched back to their send.
    pub fn matched_edges(&self) -> usize {
        self.matched_edges
    }

    /// Summed terminal-wait blame per `(coll, key)` of the chain terminals,
    /// heaviest first: which collective on which supernode the serialized
    /// stalls end at.
    pub fn blame_by_kind(&self) -> Vec<((CollKind, u64), u64)> {
        let mut acc: Vec<((CollKind, u64), u64)> = Vec::new();
        for c in &self.chains {
            let t = c.terminal();
            match acc.iter_mut().find(|(k, _)| *k == (t.coll, t.key)) {
                Some((_, us)) => *us += c.wait_us(),
                None => acc.push(((t.coll, t.key), c.wait_us())),
            }
        }
        acc.sort_by_key(|&(_, us)| std::cmp::Reverse(us));
        acc
    }

    /// ASCII report: validation verdict and the top chains.
    pub fn ascii(&self, top: usize) -> String {
        let mut out = format!(
            "causal chains: {} matched edges, {} chains, total late-sender wait {} µs\n",
            self.matched_edges,
            self.chains.len(),
            self.total_wait_us
        );
        if self.is_valid() {
            out.push_str("happens-before: consistent (acyclic, clocks monotone)\n");
        } else {
            out.push_str(&format!("happens-before: {} VIOLATIONS\n", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!("  !! {v}\n"));
            }
        }
        for (i, c) in self.top(top).iter().enumerate() {
            let t = c.terminal();
            out.push_str(&format!(
                "  #{} {} µs ending in {} key={} on rank {} ({} links)\n",
                i + 1,
                c.wait_us(),
                t.coll.name(),
                key_str(t.key),
                t.rank,
                c.links.len()
            ));
            for l in &c.links {
                out.push_str(&format!(
                    "     [{} µs] rank {} waited {} µs (+{} µs transfer) in {} key={}\n",
                    l.ts_us,
                    l.rank,
                    l.wait_us,
                    l.transfer_us,
                    l.coll.name(),
                    key_str(l.key)
                ));
            }
        }
        out
    }

    /// JSON rendering (validation verdict plus the top `top` chains).
    pub fn json(&self, top: usize) -> Json {
        let chains = self
            .top(top)
            .iter()
            .map(|c| {
                let links = c
                    .links
                    .iter()
                    .map(|l| {
                        Json::obj([
                            ("rank", l.rank.into()),
                            ("coll", l.coll.name().into()),
                            ("key", l.key.into()),
                            ("wait_us", l.wait_us.into()),
                            ("transfer_us", l.transfer_us.into()),
                            ("ts_us", l.ts_us.into()),
                        ])
                    })
                    .collect();
                Json::obj([("wait_us", c.wait_us().into()), ("links", Json::Arr(links))])
            })
            .collect();
        Json::obj([
            ("valid", self.is_valid().into()),
            (
                "violations",
                Json::Arr(self.violations.iter().map(|v| Json::from(v.as_str())).collect()),
            ),
            ("matched_edges", self.matched_edges.into()),
            ("total_wait_us", self.total_wait_us.into()),
            ("chains", Json::Arr(chains)),
        ])
    }
}

/// A `(rank, event position)` node of the happens-before graph.
type Node = (usize, usize);

/// Kahn's algorithm over program order + message edges. Returns a node on
/// a cycle if one exists.
fn find_cycle(trace: &Trace, edges: &[(Node, Node)]) -> Option<Node> {
    // Node id = (rank slot, event pos) flattened. Program-order edges are
    // implicit (pos -> pos + 1 within a rank).
    let slot: HashMap<usize, usize> =
        trace.ranks.iter().enumerate().map(|(i, r)| (r.rank, i)).collect();
    let lens: Vec<usize> = trace.ranks.iter().map(|r| r.events.len()).collect();
    let base: Vec<usize> = lens
        .iter()
        .scan(0usize, |acc, &l| {
            let b = *acc;
            *acc += l;
            Some(b)
        })
        .collect();
    let n: usize = lens.iter().sum();
    let id = |rank: usize, pos: usize| base[slot[&rank]] + pos;
    let mut indeg = vec![0u32; n];
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (s, l) in lens.iter().enumerate() {
        for p in 1..*l {
            indeg[base[s] + p] += 1;
            out[base[s] + p - 1].push((base[s] + p) as u32);
        }
    }
    for &((sr, sp), (dr, dp)) in edges {
        if !slot.contains_key(&sr) || !slot.contains_key(&dr) {
            continue; // dangling edge already reported as a violation
        }
        indeg[id(dr, dp)] += 1;
        out[id(sr, sp)].push(id(dr, dp) as u32);
    }
    let mut stack: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut seen = 0usize;
    while let Some(v) = stack.pop() {
        seen += 1;
        for &w in &out[v as usize] {
            indeg[w as usize] -= 1;
            if indeg[w as usize] == 0 {
                stack.push(w);
            }
        }
    }
    if seen == n {
        return None;
    }
    let bad = indeg.iter().position(|&d| d > 0).unwrap();
    let s = base.partition_point(|&b| b <= bad) - 1;
    Some((trace.ranks[s].rank, bad - base[s]))
}

/// Builds one blame chain per late-sender wait: each wait names the send
/// that ended it; the sender's own last wait *before issuing that send* is
/// the upstream link.
fn extract_chains(sends: &HashMap<(usize, u64), SendRec>, waits: &[WaitRec]) -> Vec<BlameChain> {
    // Per-rank wait positions, ascending, for "last wait before pos".
    let mut by_rank: HashMap<usize, Vec<usize>> = HashMap::new(); // rank -> wait indices
    for (i, w) in waits.iter().enumerate() {
        by_rank.entry(w.rank).or_default().push(i);
    }
    let pred = |w: &WaitRec| -> Option<usize> {
        let (s, i) = w.cause?;
        let send = sends.get(&(s, i))?;
        let ws = by_rank.get(&s)?;
        // Last wait on the sender recorded before the send.
        let k = ws.partition_point(|&wi| waits[wi].pos < send.pos);
        (k > 0).then(|| ws[k - 1])
    };
    let mut chains = Vec::new();
    for (i, w) in waits.iter().enumerate() {
        if w.wait_us == 0 {
            continue; // pure transfer blocking: nobody was late
        }
        let mut rev: Vec<usize> = vec![i];
        let mut visited = vec![i];
        let mut cur = i;
        while let Some(p) = pred(&waits[cur]) {
            if visited.contains(&p) {
                break; // defensive: a cyclic trace is already a violation
            }
            visited.push(p);
            rev.push(p);
            cur = p;
        }
        let links = rev
            .into_iter()
            .rev()
            .map(|wi| {
                let w = &waits[wi];
                BlameLink {
                    rank: w.rank,
                    coll: w.coll,
                    key: w.key,
                    wait_us: w.wait_us,
                    transfer_us: w.transfer_us,
                    ts_us: w.ts_us,
                }
            })
            .collect();
        chains.push(BlameChain { links });
    }
    chains.sort_by(|a, b| {
        b.wait_us().cmp(&a.wait_us()).then_with(|| b.links.len().cmp(&a.links.len()))
    });
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_trace::{collect, RankTracer};

    /// Two ranks, one message, one caused wait: the minimal causal trace.
    fn minimal() -> Trace {
        let mut a = RankTracer::manual(0);
        a.set_time_us(5);
        a.msg_send(1, 7, 64, 1, 0);
        let mut b = RankTracer::manual(1);
        b.set_time_us(9);
        b.recv_wait(0, 5, Some((0, 0))); // posted 0, sent 5, done 9
        b.msg_recv(0, 7, 64, 2, 0);
        collect("causal/minimal", vec![a, b]).unwrap()
    }

    #[test]
    fn minimal_trace_is_valid_with_one_chain() {
        let cc = CausalChains::from_trace(&minimal());
        assert!(cc.is_valid(), "{:?}", cc.violations());
        assert_eq!(cc.matched_edges(), 1);
        assert_eq!(cc.chains().len(), 1);
        let c = cc.longest().unwrap();
        assert_eq!(c.wait_us(), 5);
        assert_eq!(c.terminal().rank, 1);
        assert_eq!(cc.total_wait_us(), 5);
    }

    #[test]
    fn chains_follow_cause_links_upstream() {
        // rank 0 waits 10 for rank 2's send idx 0, then sends idx 0 to
        // rank 1; rank 1 waits 7 for it. The rank-1 chain must include the
        // upstream rank-0 wait: 17 µs total.
        let mut c2 = RankTracer::manual(2);
        c2.set_time_us(3);
        c2.msg_send(0, 1, 8, 1, 0);
        let mut a = RankTracer::manual(0);
        a.set_time_us(13);
        a.recv_wait(3, 13, Some((2, 0)));
        a.msg_recv(2, 1, 8, 2, 0);
        a.msg_send(1, 2, 8, 3, 0);
        let mut b = RankTracer::manual(1);
        b.set_time_us(20);
        b.recv_wait(6, 13, Some((0, 0)));
        b.msg_recv(0, 2, 8, 4, 0);
        let t = collect("causal/chain", vec![c2, a, b]).unwrap();
        let cc = CausalChains::from_trace(&t);
        assert!(cc.is_valid(), "{:?}", cc.violations());
        assert_eq!(cc.chains().len(), 2);
        let longest = cc.longest().unwrap();
        assert_eq!(longest.links.len(), 2);
        assert_eq!(longest.wait_us(), 17);
        assert_eq!(longest.rank_sequence(), vec![0, 1]);
        // Both chains terminate in (Other, NO_KEY), so their totals
        // aggregate under that one blame bucket: 17 + 10.
        let blame = cc.blame_by_kind();
        assert_eq!(blame.len(), 1);
        assert_eq!(blame[0].1, 27);
    }

    #[test]
    fn non_monotone_clock_is_flagged() {
        let mut a = RankTracer::manual(0);
        a.msg_send(1, 0, 8, 5, 0);
        a.msg_send(1, 1, 8, 5, 1); // clock did not advance
        let t = collect("causal/clock", vec![a]).unwrap();
        let cc = CausalChains::from_trace(&t);
        assert!(!cc.is_valid());
        assert!(cc.violations()[0].contains("does not exceed"), "{:?}", cc.violations());
    }

    #[test]
    fn recv_clock_not_after_send_is_flagged() {
        let mut a = RankTracer::manual(0);
        a.msg_send(1, 0, 8, 9, 0);
        let mut b = RankTracer::manual(1);
        b.msg_recv(0, 0, 8, 9, 0); // merged clock must be > 9
        let t = collect("causal/merge", vec![a, b]).unwrap();
        let cc = CausalChains::from_trace(&t);
        assert!(!cc.is_valid());
        assert!(
            cc.violations().iter().any(|v| v.contains("clk=9 <= send clk=9")),
            "{:?}",
            cc.violations()
        );
    }

    #[test]
    fn double_consumption_and_missing_send_are_flagged() {
        let mut a = RankTracer::manual(0);
        a.msg_send(1, 0, 8, 1, 0);
        let mut b = RankTracer::manual(1);
        b.msg_recv(0, 0, 8, 2, 0);
        b.msg_recv(0, 0, 8, 3, 0); // duplicate consumption of 0:0
        b.msg_recv(2, 0, 8, 4, 5); // no rank-2 send event at all
        let t = collect("causal/dup", vec![a, b]).unwrap();
        let cc = CausalChains::from_trace(&t);
        assert!(!cc.is_valid());
        assert!(cc.violations().iter().any(|v| v.contains("consumed twice")));
        assert!(cc.violations().iter().any(|v| v.contains("no matching send")));
    }

    #[test]
    fn renders_ascii_and_json() {
        let cc = CausalChains::from_trace(&minimal());
        let text = cc.ascii(5);
        assert!(text.contains("causal chains:"), "{text}");
        assert!(text.contains("consistent"), "{text}");
        let doc = Json::parse(&cc.json(5).to_string_pretty()).unwrap();
        assert_eq!(doc.get("valid"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("total_wait_us").unwrap().as_f64(), Some(5.0));
        assert_eq!(doc.get("chains").unwrap().as_arr().unwrap().len(), 1);
    }
}
