//! Per-rank × per-collective load heat maps and imbalance ratios.
//!
//! The paper's load-balancing story (Tables I/II, Figs. 5–7) is about
//! *where* bytes concentrate on the `Pr × Pc` process grid: a flat
//! broadcast tree piles the whole fan-out onto supernode roots, a striped
//! binary tree piles it onto interior columns, and the shifted binary
//! tree spreads it. [`HotspotReport`] reproduces that view from either a
//! recorded [`Trace`] (both backends) or a structure-only
//! [`VolumeReport`] replay.

use pselinv_dist::VolumeReport;
use pselinv_trace::{CollKind, Json, Trace};
use pselinv_trees::VolumeStats;

/// Load-imbalance ratios of a per-rank volume vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Imbalance {
    /// `max / mean` — 1.0 is perfectly balanced; the paper's headline
    /// metric for Tables I/II.
    pub max_over_mean: f64,
    /// `σ / mean` (coefficient of variation) — spread of the whole
    /// distribution, not just its peak.
    pub sigma_over_mean: f64,
}

impl Imbalance {
    /// Ratios of `volumes`; both ratios are 0 when the mean is 0 (an
    /// all-zero vector is trivially balanced).
    pub fn from_volumes(volumes: &[u64]) -> Self {
        let s = VolumeStats::from_volumes(volumes);
        if s.mean <= 0.0 {
            return Imbalance { max_over_mean: 0.0, sigma_over_mean: 0.0 };
        }
        Imbalance { max_over_mean: s.max / s.mean, sigma_over_mean: s.std_dev / s.mean }
    }
}

/// Per-rank load of one collective kind.
#[derive(Clone, Debug)]
pub struct KindLoad {
    pub coll: CollKind,
    /// Bytes sent by each rank under this kind.
    pub sent_bytes: Vec<u64>,
    /// Messages sent by each rank under this kind.
    pub sent_msgs: Vec<u64>,
    /// Bytes received (consumed) by each rank under this kind.
    pub recv_bytes: Vec<u64>,
}

impl KindLoad {
    fn is_empty(&self) -> bool {
        self.sent_bytes.iter().all(|&b| b == 0) && self.recv_bytes.iter().all(|&b| b == 0)
    }
}

/// Hot-spot report: per-rank load of every active collective kind on a
/// `pr × pc` grid, with ASCII and JSON renderings.
#[derive(Clone, Debug)]
pub struct HotspotReport {
    pub label: String,
    /// Grid shape `(pr, pc)`; `pr * pc` equals the length of every
    /// per-rank vector.
    pub grid: (usize, usize),
    /// One entry per [`CollKind`] that moved any bytes.
    pub kinds: Vec<KindLoad>,
}

impl HotspotReport {
    /// Builds the report from a recorded trace (either backend). `grid`
    /// must satisfy `pr * pc == number of ranks`; ranks are laid out
    /// row-major (`rank = r * pc + c`), matching [`VolumeReport`].
    pub fn from_trace(trace: &Trace, grid: (usize, usize)) -> Self {
        let p = grid.0 * grid.1;
        assert_eq!(
            p,
            trace.ranks.len(),
            "grid {grid:?} does not cover {} ranks",
            trace.ranks.len()
        );
        let mut kinds = Vec::new();
        for coll in CollKind::ALL {
            let mut load = KindLoad {
                coll,
                sent_bytes: vec![0; p],
                sent_msgs: vec![0; p],
                recv_bytes: vec![0; p],
            };
            for r in &trace.ranks {
                let c = r.metrics.kind(coll);
                load.sent_bytes[r.rank] = c.bytes_sent;
                load.sent_msgs[r.rank] = c.msgs_sent;
                load.recv_bytes[r.rank] = c.bytes_recv;
            }
            if !load.is_empty() {
                kinds.push(load);
            }
        }
        HotspotReport { label: trace.label.clone(), grid, kinds }
    }

    /// Builds the report from a structure-only volume replay: Col-Bcast
    /// *sent* bytes and Row-Reduce *received* bytes, the paper's two
    /// headline measurements. Message counts are unknown to the replay
    /// and left at zero.
    pub fn from_volumes(label: impl Into<String>, rep: &VolumeReport) -> Self {
        let p = rep.grid.0 * rep.grid.1;
        let kinds = vec![
            KindLoad {
                coll: CollKind::ColBcast,
                sent_bytes: rep.col_bcast_sent.clone(),
                sent_msgs: vec![0; p],
                recv_bytes: vec![0; p],
            },
            KindLoad {
                coll: CollKind::RowReduce,
                sent_bytes: vec![0; p],
                sent_msgs: vec![0; p],
                recv_bytes: rep.row_reduce_received.clone(),
            },
        ];
        HotspotReport { label: label.into(), grid: rep.grid, kinds }
    }

    /// Load vector of `coll` in the report's primary direction: sent
    /// bytes if any rank sent under this kind, received bytes otherwise
    /// (Row-Reduce is measured on the receive side).
    pub fn primary_load(&self, coll: CollKind) -> Option<&[u64]> {
        let k = self.kinds.iter().find(|k| k.coll == coll)?;
        if k.sent_bytes.iter().any(|&b| b > 0) {
            Some(&k.sent_bytes)
        } else {
            Some(&k.recv_bytes)
        }
    }

    /// Imbalance ratios of `coll`'s primary load.
    pub fn imbalance(&self, coll: CollKind) -> Option<Imbalance> {
        self.primary_load(coll).map(Imbalance::from_volumes)
    }

    /// ASCII rendering: one `pr × pc` glyph heat map per active kind
    /// (darker glyph = more bytes), with total/max/mean and the two
    /// imbalance ratios.
    pub fn ascii(&self) -> String {
        let (pr, pc) = self.grid;
        let mut out = format!("hot spots: {} ({}x{} grid)\n", self.label, pr, pc);
        for k in &self.kinds {
            let sent_total: u64 = k.sent_bytes.iter().sum();
            let (dir, v) =
                if sent_total > 0 { ("sent", &k.sent_bytes) } else { ("recv", &k.recv_bytes) };
            let imb = Imbalance::from_volumes(v);
            let stats = VolumeStats::from_volumes(v);
            out.push_str(&format!(
                "\n{} ({dir} bytes): total {:.2} MB, max {:.2} MB, mean {:.2} MB, \
                 max/mean {:.2}, sigma/mean {:.2}\n",
                k.coll.name(),
                v.iter().sum::<u64>() as f64 * 1e-6,
                stats.max * 1e-6,
                stats.mean * 1e-6,
                imb.max_over_mean,
                imb.sigma_over_mean,
            ));
            out.push_str(&heatmap_ascii(v, pr, pc));
        }
        out
    }

    /// JSON rendering, suitable as a CI artifact.
    pub fn json(&self) -> Json {
        let kinds = self
            .kinds
            .iter()
            .map(|k| {
                let imb = self
                    .imbalance(k.coll)
                    .unwrap_or(Imbalance { max_over_mean: 0.0, sigma_over_mean: 0.0 });
                Json::obj([
                    ("kind", k.coll.name().into()),
                    ("sent_bytes", Json::Arr(k.sent_bytes.iter().map(|&b| b.into()).collect())),
                    ("sent_msgs", Json::Arr(k.sent_msgs.iter().map(|&m| m.into()).collect())),
                    ("recv_bytes", Json::Arr(k.recv_bytes.iter().map(|&b| b.into()).collect())),
                    ("max_over_mean", imb.max_over_mean.into()),
                    ("sigma_over_mean", imb.sigma_over_mean.into()),
                ])
            })
            .collect();
        Json::obj([
            ("label", self.label.as_str().into()),
            ("grid", Json::Arr(vec![self.grid.0.into(), self.grid.1.into()])),
            ("kinds", Json::Arr(kinds)),
        ])
    }
}

/// Renders `v` (row-major, `pr × pc`) as a glyph heat map: each cell is
/// scaled against the global maximum on a 10-step ramp.
fn heatmap_ascii(v: &[u64], pr: usize, pc: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let max = v.iter().copied().max().unwrap_or(0).max(1) as f64;
    let mut out = String::new();
    for r in 0..pr {
        out.push_str("  ");
        for c in 0..pc {
            let x = v[r * pc + c] as f64 / max;
            let i = ((x * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[i] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_trace::{collect, RankTracer};

    fn trace_2x2() -> Trace {
        let mut tracers: Vec<RankTracer> = (0..4).map(RankTracer::manual).collect();
        tracers[0].push_scope(CollKind::ColBcast, 0);
        tracers[0].msg_send(1, 1, 1000, 1, 0);
        tracers[0].msg_send(2, 1, 1000, 2, 1);
        tracers[0].pop_scope();
        tracers[3].push_scope(CollKind::RowReduce, 0);
        tracers[3].msg_recv(1, 2, 500, 3, 0);
        tracers[3].pop_scope();
        collect("unit/2x2", tracers).unwrap()
    }

    #[test]
    fn from_trace_collects_per_rank_loads() {
        let rep = HotspotReport::from_trace(&trace_2x2(), (2, 2));
        assert_eq!(rep.kinds.len(), 2);
        assert_eq!(rep.primary_load(CollKind::ColBcast).unwrap(), &[2000, 0, 0, 0]);
        assert_eq!(rep.primary_load(CollKind::RowReduce).unwrap(), &[0, 0, 0, 500]);
        assert!(rep.primary_load(CollKind::DiagBcast).is_none());
    }

    #[test]
    fn imbalance_ratios() {
        let i = Imbalance::from_volumes(&[4, 0, 0, 0]);
        assert!((i.max_over_mean - 4.0).abs() < 1e-12);
        assert!(i.sigma_over_mean > 1.0);
        let b = Imbalance::from_volumes(&[3, 3, 3, 3]);
        assert!((b.max_over_mean - 1.0).abs() < 1e-12);
        assert!(b.sigma_over_mean.abs() < 1e-12);
        let z = Imbalance::from_volumes(&[0, 0]);
        assert_eq!(z.max_over_mean, 0.0);
    }

    #[test]
    fn ascii_has_grid_rows_and_stats() {
        let rep = HotspotReport::from_trace(&trace_2x2(), (2, 2));
        let text = rep.ascii();
        assert!(text.contains("ColBcast"));
        assert!(text.contains("max/mean"));
        // Each kind renders pr=2 heat-map rows of pc=2 glyphs.
        let map_rows = text.lines().filter(|l| l.starts_with("  ") && l.len() == 4).count();
        assert_eq!(map_rows, 4);
    }

    #[test]
    fn json_roundtrips_and_carries_loads() {
        let rep = HotspotReport::from_trace(&trace_2x2(), (2, 2));
        let doc = rep.json();
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(parsed.get("label").unwrap().as_str(), Some("unit/2x2"));
        let kinds = parsed.get("kinds").unwrap().as_arr().unwrap();
        assert_eq!(kinds.len(), 2);
        assert_eq!(kinds[0].get("kind").unwrap().as_str(), Some("ColBcast"));
        assert_eq!(kinds[0].get("sent_bytes").unwrap().idx(0).unwrap().as_f64(), Some(2000.0));
        assert!(kinds[0].get("max_over_mean").unwrap().as_f64().unwrap() > 1.0);
    }

    #[test]
    fn heatmap_glyphs_scale_with_load() {
        let text = heatmap_ascii(&[100, 0, 50, 100], 2, 2);
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], "  @ ");
        assert_eq!(rows[1], "  +@");
    }
}
