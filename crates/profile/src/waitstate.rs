//! Per-rank wait-state profile (the paper's Fig. 9 view).
//!
//! Both backends stamp blocked time with one shared vocabulary (see
//! `DESIGN.md`): *wait* is late-sender time — the receiver was blocked
//! before the matching send was even issued (mpisim) or the core sat
//! idle before a task could start (DES) — and *transfer* is the part of
//! the blocked interval during which the message was genuinely in
//! flight. [`WaitReport`] tabulates both per rank and per collective
//! kind, next to the busy (span) time, so the three columns account for
//! a rank's whole timeline.

use pselinv_trace::{CollKind, Json, Trace};

/// Wait/transfer/busy accounting for one rank.
#[derive(Clone, Debug)]
pub struct RankWait {
    pub rank: usize,
    /// Busy time inside spans (µs), all kinds.
    pub span_us: u64,
    /// Late-sender wait (µs) per [`CollKind`] index.
    pub wait_us: Vec<u64>,
    /// Transfer time (µs) per [`CollKind`] index.
    pub transfer_us: Vec<u64>,
}

impl RankWait {
    /// Total late-sender wait across kinds.
    pub fn total_wait_us(&self) -> u64 {
        self.wait_us.iter().sum()
    }

    /// Total transfer time across kinds.
    pub fn total_transfer_us(&self) -> u64 {
        self.transfer_us.iter().sum()
    }
}

/// Wait-state report over a whole run.
#[derive(Clone, Debug)]
pub struct WaitReport {
    pub label: String,
    pub ranks: Vec<RankWait>,
}

impl WaitReport {
    /// Tabulates the wait-state counters of `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let ranks = trace
            .ranks
            .iter()
            .map(|r| RankWait {
                rank: r.rank,
                span_us: r.metrics.total_span_time_us(),
                wait_us: CollKind::ALL.iter().map(|&k| r.metrics.kind(k).wait_us).collect(),
                transfer_us: CollKind::ALL.iter().map(|&k| r.metrics.kind(k).transfer_us).collect(),
            })
            .collect();
        WaitReport { label: trace.label.clone(), ranks }
    }

    /// Run-wide wait time of one kind (µs).
    pub fn wait_us(&self, coll: CollKind) -> u64 {
        self.ranks.iter().map(|r| r.wait_us[coll.index()]).sum()
    }

    /// The kind with the largest run-wide wait time, if any wait was
    /// recorded — the answer to "which collective are ranks stuck in?".
    pub fn dominant_wait_kind(&self) -> Option<CollKind> {
        CollKind::ALL
            .iter()
            .copied()
            .map(|k| (self.wait_us(k), k))
            .filter(|&(w, _)| w > 0)
            .max_by_key(|&(w, k)| (w, std::cmp::Reverse(k.index())))
            .map(|(_, k)| k)
    }

    /// ASCII table: one row per rank with busy/wait/transfer and the
    /// rank's dominant wait kind.
    pub fn ascii(&self) -> String {
        let mut out = format!(
            "wait states: {}\n{:>5} {:>12} {:>12} {:>12}  dominant wait\n",
            self.label, "rank", "busy µs", "wait µs", "xfer µs"
        );
        for r in &self.ranks {
            let dom = CollKind::ALL
                .iter()
                .copied()
                .map(|k| (r.wait_us[k.index()], k))
                .filter(|&(w, _)| w > 0)
                .max_by_key(|&(w, k)| (w, std::cmp::Reverse(k.index())))
                .map(|(_, k)| k.name())
                .unwrap_or("-");
            out.push_str(&format!(
                "{:>5} {:>12} {:>12} {:>12}  {dom}\n",
                r.rank,
                r.span_us,
                r.total_wait_us(),
                r.total_transfer_us(),
            ));
        }
        let wait: u64 = self.ranks.iter().map(RankWait::total_wait_us).sum();
        let xfer: u64 = self.ranks.iter().map(RankWait::total_transfer_us).sum();
        let busy: u64 = self.ranks.iter().map(|r| r.span_us).sum();
        out.push_str(&format!("total {busy:>12} {wait:>12} {xfer:>12}\n"));
        out
    }

    /// JSON rendering.
    pub fn json(&self) -> Json {
        let ranks = self
            .ranks
            .iter()
            .map(|r| {
                let kinds: Vec<Json> = CollKind::ALL
                    .iter()
                    .filter(|&&k| r.wait_us[k.index()] > 0 || r.transfer_us[k.index()] > 0)
                    .map(|&k| {
                        Json::obj([
                            ("kind", k.name().into()),
                            ("wait_us", r.wait_us[k.index()].into()),
                            ("transfer_us", r.transfer_us[k.index()].into()),
                        ])
                    })
                    .collect();
                Json::obj([
                    ("rank", r.rank.into()),
                    ("busy_us", r.span_us.into()),
                    ("wait_us", r.total_wait_us().into()),
                    ("transfer_us", r.total_transfer_us().into()),
                    ("kinds", Json::Arr(kinds)),
                ])
            })
            .collect();
        Json::obj([("label", self.label.as_str().into()), ("ranks", Json::Arr(ranks))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_trace::{collect, RankTracer};

    fn sample() -> Trace {
        let mut a = RankTracer::manual(0);
        a.span_at(CollKind::Compute, 0, 0, 100);
        let mut b = RankTracer::manual(1);
        b.push_scope(CollKind::ColBcast, 0);
        b.set_time_us(60);
        b.recv_wait(0, 40, None); // wait 40, transfer 20
        b.pop_scope();
        b.wait_at(CollKind::RowReduce, 1, 60, 70, None); // wait 10
        collect("unit/wait", vec![a, b]).unwrap()
    }

    #[test]
    fn tabulates_per_rank_and_per_kind() {
        let rep = WaitReport::from_trace(&sample());
        assert_eq!(rep.ranks[0].span_us, 100);
        assert_eq!(rep.ranks[0].total_wait_us(), 0);
        assert_eq!(rep.ranks[1].wait_us[CollKind::ColBcast.index()], 40);
        assert_eq!(rep.ranks[1].transfer_us[CollKind::ColBcast.index()], 20);
        assert_eq!(rep.ranks[1].wait_us[CollKind::RowReduce.index()], 10);
        assert_eq!(rep.wait_us(CollKind::ColBcast), 40);
        assert_eq!(rep.dominant_wait_kind(), Some(CollKind::ColBcast));
    }

    #[test]
    fn ascii_and_json_render() {
        let rep = WaitReport::from_trace(&sample());
        let text = rep.ascii();
        assert!(text.contains("ColBcast"));
        assert!(text.contains("total"));
        let doc = Json::parse(&rep.json().to_string_pretty()).unwrap();
        let r1 = doc.get("ranks").unwrap().idx(1).unwrap();
        assert_eq!(r1.get("wait_us").unwrap().as_f64(), Some(50.0));
        assert_eq!(r1.get("transfer_us").unwrap().as_f64(), Some(20.0));
    }
}
