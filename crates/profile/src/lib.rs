//! Hot-spot, wait-state and critical-path analysis for PSelInv runs.
//!
//! This crate turns the raw per-rank data recorded by `pselinv-trace`
//! (from either the mpisim runtime or the DES backend) into the three
//! reports the paper's evaluation revolves around:
//!
//! * [`hotspots`] — per-rank × per-collective message and byte load,
//!   rendered as `Pr × Pc` heat maps with max/mean and σ/mean imbalance
//!   ratios. This is the view in which the flat tree's root hot spots
//!   (Figs. 5–7) and the shifted binary tree's balance are visible.
//! * [`waitstate`] — Scalasca-style classification of blocked time into
//!   *late-sender wait* (the matching send had not been issued yet) and
//!   *transfer* (the message was already in flight), per rank and per
//!   collective kind. Both backends stamp the same vocabulary, so the
//!   reports are directly comparable.
//! * [`causal`] — happens-before reconstruction from the Lamport clock
//!   and `(sender, send idx)` provenance both backends stamp on every
//!   message: validates the run (no cycles, monotone clocks — a free
//!   ordering detector for the async engine) and extracts the longest
//!   *blame chains* of causally linked late-sender waits.
//! * [`critpath`] — the longest weighted path through the simulated
//!   schedule, extracted from the DES engine's [`SimProfile`]: which
//!   tasks, transfers and idle gaps actually bound the makespan, with a
//!   per-kind breakdown and the rank sequence the path hops through.
//!
//! All reports render as ASCII (for terminals and logs) and as
//! [`Json`](pselinv_trace::Json) (for artifacts and CI).
//!
//! [`SimProfile`]: pselinv_des::SimProfile

pub mod causal;
pub mod critpath;
pub mod hotspots;
pub mod waitstate;

pub use causal::{BlameChain, BlameLink, CausalChains};
pub use critpath::{CritStep, CriticalPath, StepKind};
pub use hotspots::{HotspotReport, Imbalance, KindLoad};
pub use waitstate::WaitReport;
