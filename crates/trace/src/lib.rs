//! `pselinv-trace`: a lightweight event/metrics layer shared by the
//! thread-per-rank mpisim backend and the discrete-event simulator.
//!
//! Design goals:
//!
//! * **Zero cost when disabled.** Every hook on [`RankTracer`] is a single
//!   branch on an `Option`; the disabled tracer carries no allocation. The
//!   instrumented runtimes construct disabled tracers by default, so the
//!   un-traced paths (`mpisim::run`, `des::simulate`) behave exactly as
//!   before.
//! * **One vocabulary for both backends.** Spans and messages are keyed by
//!   [`CollKind`] (the paper's phases: `Col-Bcast`, `Row-Reduce`, …) plus a
//!   supernode index, whether the clock is wall time (mpisim) or simulated
//!   time (DES).
//! * **Exact accounting.** Bytes attributed to `ColBcast` by the traced
//!   runtime equal the structural prediction of
//!   `pselinv_dist::volume::replay_volumes` for the same layout and tree
//!   scheme — tests pin this.
//!
//! Two exporters: [`chrome::to_chrome`] renders Chrome trace-event JSON
//! loadable in `chrome://tracing`/Perfetto, and [`Trace::summary_table`]
//! prints per-rank min/max/σ statistics in the shape of the paper's
//! Table I.

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;

pub use event::{
    pack_task_tag, unpack_task_tag, CollKind, EventKind, FaultKind, TraceEvent, NO_KEY,
};
pub use json::Json;
pub use metrics::{KindCounters, RankMetrics, N_KINDS};
pub use sink::{collect, key_of, RankTrace, RankTracer, Trace};
