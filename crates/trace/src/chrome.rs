//! Chrome trace-event ("catapult") export.
//!
//! The produced JSON loads directly in `chrome://tracing` and in Perfetto:
//! one process (pid 0) with one named thread per rank, complete ("X")
//! events for spans, instant ("i") events for message send/arrival, and
//! counter ("C") events for the stash depth.

use crate::event::{EventKind, NO_KEY};
use crate::json::Json;
use crate::sink::Trace;

/// Renders `trace` as a Chrome trace-event JSON document.
pub fn to_chrome(trace: &Trace) -> Json {
    let mut events = Vec::new();
    for r in &trace.ranks {
        let tid = Json::from(r.rank);
        // Thread-name metadata so the timeline rows read "rank N".
        events.push(Json::obj([
            ("name", "thread_name".into()),
            ("ph", "M".into()),
            ("pid", 0u64.into()),
            ("tid", tid.clone()),
            ("args", Json::obj([("name", format!("rank {}", r.rank).into())])),
        ]));
        for e in &r.events {
            match &e.kind {
                EventKind::Span { coll, key, end_us } => {
                    let mut args = vec![("kind".to_string(), Json::from(coll.name()))];
                    if *key != NO_KEY {
                        args.push(("supernode".to_string(), Json::from(*key)));
                    }
                    events.push(Json::obj([
                        ("name", coll.name().into()),
                        ("cat", "span".into()),
                        ("ph", "X".into()),
                        ("pid", 0u64.into()),
                        ("tid", tid.clone()),
                        ("ts", e.ts_us.into()),
                        ("dur", (end_us - e.ts_us).into()),
                        ("args", Json::Obj(args)),
                    ]));
                }
                EventKind::MsgSend { peer, tag, bytes, coll } => {
                    events.push(Json::obj([
                        ("name", "send".into()),
                        ("cat", "msg".into()),
                        ("ph", "i".into()),
                        ("s", "t".into()),
                        ("pid", 0u64.into()),
                        ("tid", tid.clone()),
                        ("ts", e.ts_us.into()),
                        (
                            "args",
                            Json::obj([
                                ("dst", (*peer).into()),
                                ("tag", (*tag).into()),
                                ("bytes", (*bytes).into()),
                                ("kind", coll.name().into()),
                            ]),
                        ),
                    ]));
                }
                EventKind::MsgRecv { peer, tag, bytes, coll } => {
                    events.push(Json::obj([
                        ("name", "recv".into()),
                        ("cat", "msg".into()),
                        ("ph", "i".into()),
                        ("s", "t".into()),
                        ("pid", 0u64.into()),
                        ("tid", tid.clone()),
                        ("ts", e.ts_us.into()),
                        (
                            "args",
                            Json::obj([
                                ("src", (*peer).into()),
                                ("tag", (*tag).into()),
                                ("bytes", (*bytes).into()),
                                ("kind", coll.name().into()),
                            ]),
                        ),
                    ]));
                }
                EventKind::StashDepth { depth } => {
                    events.push(Json::obj([
                        ("name", "stash".into()),
                        ("cat", "stash".into()),
                        ("ph", "C".into()),
                        ("pid", 0u64.into()),
                        ("tid", tid.clone()),
                        ("ts", e.ts_us.into()),
                        ("args", Json::obj([("depth", (*depth).into())])),
                    ]));
                }
            }
        }
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", "ms".into()),
        ("otherData", Json::obj([("label", trace.label.as_str().into())])),
    ])
}

/// Structural validity check for a Chrome trace document: `traceEvents`
/// must be an array whose every element carries the mandatory `ph`, `pid`,
/// `tid` fields, a `name`, and (for non-metadata phases) a numeric `ts`;
/// "X" events additionally need a numeric `dur`. Returns the event count.
pub fn validate_chrome(doc: &Json) -> Result<usize, String> {
    let events =
        doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing traceEvents array")?;
    for (i, e) in events.iter().enumerate() {
        let ph =
            e.get("ph").and_then(Json::as_str).ok_or_else(|| format!("event {i}: missing ph"))?;
        e.get("name").and_then(Json::as_str).ok_or_else(|| format!("event {i}: missing name"))?;
        e.get("pid").and_then(Json::as_f64).ok_or_else(|| format!("event {i}: missing pid"))?;
        e.get("tid").and_then(Json::as_f64).ok_or_else(|| format!("event {i}: missing tid"))?;
        if ph != "M" {
            e.get("ts").and_then(Json::as_f64).ok_or_else(|| format!("event {i}: missing ts"))?;
        }
        if ph == "X" {
            e.get("dur")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: X event missing dur"))?;
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CollKind;
    use crate::sink::{collect, RankTracer};

    fn sample_trace() -> Trace {
        let mut a = RankTracer::manual(0);
        a.set_time_us(1);
        a.push_scope(CollKind::ColBcast, 4);
        a.msg_send(1, 99, 256);
        a.set_time_us(8);
        a.pop_scope();
        a.stash_depth(2);
        let mut b = RankTracer::manual(1);
        b.set_time_us(3);
        b.msg_recv(0, 99, 256);
        collect("test/flat", vec![a, b]).unwrap()
    }

    #[test]
    fn export_validates_and_roundtrips() {
        let doc = to_chrome(&sample_trace());
        let n = validate_chrome(&doc).unwrap();
        // 2 thread_name + span + send + stash + recv
        assert_eq!(n, 6);
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(validate_chrome(&parsed).unwrap(), 6);
        assert_eq!(
            parsed.get("otherData").unwrap().get("label").unwrap().as_str(),
            Some("test/flat")
        );
    }

    #[test]
    fn span_carries_supernode_and_duration() {
        let doc = to_chrome(&sample_trace());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let span =
            events.iter().find(|e| e.get("ph").unwrap().as_str() == Some("X")).expect("an X event");
        assert_eq!(span.get("name").unwrap().as_str(), Some("ColBcast"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(7.0));
        assert_eq!(span.get("args").unwrap().get("supernode").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn validator_rejects_malformed() {
        let bad = Json::obj([("traceEvents", Json::Arr(vec![Json::obj([("ph", "X".into())])]))]);
        assert!(validate_chrome(&bad).is_err());
        assert!(validate_chrome(&Json::obj([])).is_err());
    }
}
