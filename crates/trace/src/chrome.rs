//! Chrome trace-event ("catapult") export.
//!
//! The produced JSON loads directly in `chrome://tracing` and in Perfetto:
//! one process (pid 0) with one named thread per rank, complete ("X")
//! events for spans, instant ("i") events for message send/arrival, and
//! counter ("C") events for the stash depth.

use crate::event::{EventKind, NO_KEY};
use crate::json::Json;
use crate::sink::Trace;

/// Renders `trace` as a Chrome trace-event JSON document.
pub fn to_chrome(trace: &Trace) -> Json {
    let mut events = Vec::new();
    for r in &trace.ranks {
        let tid = Json::from(r.rank);
        // Thread-name metadata so the timeline rows read "rank N".
        events.push(Json::obj([
            ("name", "thread_name".into()),
            ("ph", "M".into()),
            ("pid", 0u64.into()),
            ("tid", tid.clone()),
            ("args", Json::obj([("name", format!("rank {}", r.rank).into())])),
        ]));
        for e in &r.events {
            match &e.kind {
                EventKind::Span { coll, key, end_us } => {
                    let mut args = vec![("kind".to_string(), Json::from(coll.name()))];
                    if *key != NO_KEY {
                        args.push(("supernode".to_string(), Json::from(*key)));
                    }
                    events.push(Json::obj([
                        ("name", coll.name().into()),
                        ("cat", "span".into()),
                        ("ph", "X".into()),
                        ("pid", 0u64.into()),
                        ("tid", tid.clone()),
                        ("ts", e.ts_us.into()),
                        ("dur", (end_us - e.ts_us).into()),
                        ("args", Json::Obj(args)),
                    ]));
                }
                EventKind::MsgSend { peer, tag, bytes, coll, clock, idx } => {
                    events.push(Json::obj([
                        ("name", "send".into()),
                        ("cat", "msg".into()),
                        ("ph", "i".into()),
                        ("s", "t".into()),
                        ("pid", 0u64.into()),
                        ("tid", tid.clone()),
                        ("ts", e.ts_us.into()),
                        (
                            "args",
                            Json::obj([
                                ("dst", (*peer).into()),
                                ("tag", (*tag).into()),
                                ("bytes", (*bytes).into()),
                                ("kind", coll.name().into()),
                                ("clock", (*clock).into()),
                                ("idx", (*idx).into()),
                            ]),
                        ),
                    ]));
                }
                EventKind::MsgRecv { peer, tag, bytes, coll, clock, idx } => {
                    events.push(Json::obj([
                        ("name", "recv".into()),
                        ("cat", "msg".into()),
                        ("ph", "i".into()),
                        ("s", "t".into()),
                        ("pid", 0u64.into()),
                        ("tid", tid.clone()),
                        ("ts", e.ts_us.into()),
                        (
                            "args",
                            Json::obj([
                                ("src", (*peer).into()),
                                ("tag", (*tag).into()),
                                ("bytes", (*bytes).into()),
                                ("kind", coll.name().into()),
                                ("clock", (*clock).into()),
                                ("idx", (*idx).into()),
                            ]),
                        ),
                    ]));
                }
                EventKind::StashDepth { depth } => {
                    events.push(Json::obj([
                        ("name", "stash".into()),
                        ("cat", "stash".into()),
                        ("ph", "C".into()),
                        ("pid", 0u64.into()),
                        ("tid", tid.clone()),
                        ("ts", e.ts_us.into()),
                        ("args", Json::obj([("depth", (*depth).into())])),
                    ]));
                }
                EventKind::Outstanding { count } => {
                    events.push(Json::obj([
                        ("name", "outstanding".into()),
                        ("cat", "overlap".into()),
                        ("ph", "C".into()),
                        ("pid", 0u64.into()),
                        ("tid", tid.clone()),
                        ("ts", e.ts_us.into()),
                        ("args", Json::obj([("count", (*count).into())])),
                    ]));
                }
                EventKind::Retransmits { count } => {
                    events.push(Json::obj([
                        ("name", "retransmits".into()),
                        ("cat", "retransmit".into()),
                        ("ph", "C".into()),
                        ("pid", 0u64.into()),
                        ("tid", tid.clone()),
                        ("ts", e.ts_us.into()),
                        ("args", Json::obj([("count", (*count).into())])),
                    ]));
                }
                EventKind::Fault { what, peer, tag } => {
                    events.push(Json::obj([
                        ("name", format!("fault:{}", what.name()).into()),
                        ("cat", "fault".into()),
                        ("ph", "i".into()),
                        ("s", "t".into()),
                        ("pid", 0u64.into()),
                        ("tid", tid.clone()),
                        ("ts", e.ts_us.into()),
                        ("args", Json::obj([("peer", (*peer).into()), ("tag", (*tag).into())])),
                    ]));
                }
                EventKind::Wait { coll, key, wait_us, transfer_us, cause } => {
                    let mut args = vec![
                        ("kind".to_string(), Json::from(coll.name())),
                        ("wait_us".to_string(), Json::from(*wait_us)),
                        ("transfer_us".to_string(), Json::from(*transfer_us)),
                    ];
                    if *key != NO_KEY {
                        args.push(("supernode".to_string(), Json::from(*key)));
                    }
                    if let Some((r, i)) = cause {
                        args.push(("cause_rank".to_string(), Json::from(*r)));
                        args.push(("cause_idx".to_string(), Json::from(*i)));
                    }
                    events.push(Json::obj([
                        ("name", format!("wait:{}", coll.name()).into()),
                        ("cat", "wait".into()),
                        ("ph", "X".into()),
                        ("pid", 0u64.into()),
                        ("tid", tid.clone()),
                        ("ts", e.ts_us.into()),
                        ("dur", (wait_us + transfer_us).into()),
                        ("args", Json::Obj(args)),
                    ]));
                }
            }
        }
    }
    let mut other = vec![("label".to_string(), Json::from(trace.label.as_str()))];
    for (k, v) in &trace.meta {
        if k != "label" {
            other.push((k.clone(), Json::from(v.as_str())));
        }
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", "ms".into()),
        ("otherData", Json::Obj(other)),
    ])
}

/// Structural validity check for a Chrome trace document: `traceEvents`
/// must be an array whose every element carries the mandatory `ph`, `pid`,
/// `tid` fields, a `name`, and (for non-metadata phases) a numeric `ts`;
/// "X" events additionally need a numeric `dur`. Returns the event count.
pub fn validate_chrome(doc: &Json) -> Result<usize, String> {
    let events =
        doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing traceEvents array")?;
    for (i, e) in events.iter().enumerate() {
        let ph =
            e.get("ph").and_then(Json::as_str).ok_or_else(|| format!("event {i}: missing ph"))?;
        e.get("name").and_then(Json::as_str).ok_or_else(|| format!("event {i}: missing name"))?;
        e.get("pid").and_then(Json::as_f64).ok_or_else(|| format!("event {i}: missing pid"))?;
        e.get("tid").and_then(Json::as_f64).ok_or_else(|| format!("event {i}: missing tid"))?;
        if ph != "M" {
            e.get("ts").and_then(Json::as_f64).ok_or_else(|| format!("event {i}: missing ts"))?;
        }
        if ph == "X" {
            e.get("dur")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: X event missing dur"))?;
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CollKind;
    use crate::sink::{collect, RankTracer};

    fn sample_trace() -> Trace {
        let mut a = RankTracer::manual(0);
        a.set_time_us(1);
        a.push_scope(CollKind::ColBcast, 4);
        a.msg_send(1, 99, 256, 1, 0);
        a.set_time_us(8);
        a.pop_scope();
        a.stash_depth(2);
        let mut b = RankTracer::manual(1);
        b.set_time_us(3);
        b.msg_recv(0, 99, 256, 2, 0);
        collect("test/flat", vec![a, b]).unwrap()
    }

    #[test]
    fn export_validates_and_roundtrips() {
        let doc = to_chrome(&sample_trace());
        let n = validate_chrome(&doc).unwrap();
        // 2 thread_name + span + send + stash + recv
        assert_eq!(n, 6);
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(validate_chrome(&parsed).unwrap(), 6);
        assert_eq!(
            parsed.get("otherData").unwrap().get("label").unwrap().as_str(),
            Some("test/flat")
        );
    }

    #[test]
    fn span_carries_supernode_and_duration() {
        let doc = to_chrome(&sample_trace());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let span =
            events.iter().find(|e| e.get("ph").unwrap().as_str() == Some("X")).expect("an X event");
        assert_eq!(span.get("name").unwrap().as_str(), Some("ColBcast"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(7.0));
        assert_eq!(span.get("args").unwrap().get("supernode").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn label_with_special_characters_escapes_and_roundtrips() {
        // Labels are free-form: quotes, backslashes and newlines must be
        // escaped in the serialized document and survive a parse cycle.
        let mut t = RankTracer::manual(0);
        t.msg_send(0, 0, 8, 1, 0);
        let label = "evil \"label\"\\ with\nnewline\tand unicode é";
        let trace = collect(label, vec![t]).unwrap().with_meta("scheme", "a \"quoted\" value");
        let doc = to_chrome(&trace);
        validate_chrome(&doc).unwrap();
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            let parsed = Json::parse(&text).expect("exported document must be parseable JSON");
            assert_eq!(
                parsed.get("otherData").unwrap().get("label").unwrap().as_str(),
                Some(label)
            );
            assert_eq!(
                parsed.get("otherData").unwrap().get("scheme").unwrap().as_str(),
                Some("a \"quoted\" value")
            );
        }
    }

    #[test]
    fn events_have_unique_pid_tid_keys() {
        // Duplicate keys in one object serialize as legal-looking JSON that
        // parsers resolve arbitrarily — assert each event carries exactly
        // one pid and one tid (and one ph/name/ts).
        let mut t = RankTracer::manual(2);
        t.set_time_us(1);
        t.push_scope(CollKind::RowReduce, 1);
        t.msg_send(0, 3, 64, 1, 0);
        t.msg_recv(0, 4, 32, 2, 0);
        t.set_time_us(9);
        t.recv_wait(2, 5, None);
        t.pop_scope();
        t.stash_depth(1);
        let doc = to_chrome(&collect("dup", vec![t]).unwrap());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.len() >= 6);
        for e in events {
            let Json::Obj(fields) = e else { panic!("event is not an object") };
            for key in ["pid", "tid", "ph", "name"] {
                let n = fields.iter().filter(|(k, _)| k == key).count();
                assert_eq!(n, 1, "field {key} appears {n} times in {e:?}");
            }
        }
    }

    #[test]
    fn wait_events_export_as_spans() {
        let mut t = RankTracer::manual(0);
        t.push_scope(CollKind::ColBcast, 6);
        t.set_time_us(40);
        t.recv_wait(10, 30, Some((3, 9)));
        t.pop_scope();
        let doc = to_chrome(&collect("w", vec![t]).unwrap());
        validate_chrome(&doc).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let w = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("wait"))
            .expect("a wait event");
        assert_eq!(w.get("name").unwrap().as_str(), Some("wait:ColBcast"));
        assert_eq!(w.get("ts").unwrap().as_f64(), Some(10.0));
        assert_eq!(w.get("dur").unwrap().as_f64(), Some(30.0));
        assert_eq!(w.get("args").unwrap().get("wait_us").unwrap().as_f64(), Some(20.0));
        assert_eq!(w.get("args").unwrap().get("transfer_us").unwrap().as_f64(), Some(10.0));
    }

    #[test]
    fn fault_events_export_as_instants() {
        use crate::event::FaultKind;
        let mut t = RankTracer::manual(0);
        t.set_time_us(12);
        t.fault(FaultKind::DuplicateSuppressed, 3, 77);
        let doc = to_chrome(&collect("f", vec![t]).unwrap());
        validate_chrome(&doc).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let f = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("fault"))
            .expect("a fault event");
        assert_eq!(f.get("name").unwrap().as_str(), Some("fault:dup-suppressed"));
        assert_eq!(f.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(f.get("ts").unwrap().as_f64(), Some(12.0));
        assert_eq!(f.get("args").unwrap().get("peer").unwrap().as_f64(), Some(3.0));
        assert_eq!(f.get("args").unwrap().get("tag").unwrap().as_f64(), Some(77.0));
    }

    #[test]
    fn retransmit_counter_exports_as_counter_track() {
        let mut t = RankTracer::manual(0);
        t.set_time_us(4);
        t.retransmit(2, 9, 128);
        let doc = to_chrome(&collect("r", vec![t]).unwrap());
        validate_chrome(&doc).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let c = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("retransmit"))
            .expect("a retransmit counter event");
        assert_eq!(c.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(c.get("ts").unwrap().as_f64(), Some(4.0));
        assert_eq!(c.get("args").unwrap().get("count").unwrap().as_f64(), Some(1.0));
        // The companion fault instant rides the existing fault track.
        let f = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("fault"))
            .expect("a fault instant");
        assert_eq!(f.get("name").unwrap().as_str(), Some("fault:retransmit"));
    }

    #[test]
    fn validator_rejects_malformed() {
        let bad = Json::obj([("traceEvents", Json::Arr(vec![Json::obj([("ph", "X".into())])]))]);
        assert!(validate_chrome(&bad).is_err());
        assert!(validate_chrome(&Json::obj([])).is_err());
    }
}
