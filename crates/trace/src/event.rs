//! The event vocabulary shared by the mpisim and DES backends.
//!
//! Both backends classify work and traffic with the same [`CollKind`]
//! labels, so traces from a threaded mpisim run and a simulated DES replay
//! of the same supernodal schedule are directly comparable.

/// The restricted collective (or other activity) an event is accounted to.
///
/// The first six variants are the phases of the selected-inversion sweep as
/// named in the paper; `Bcast`/`Reduce` cover bare tree collectives outside
/// any phase (e.g. microbenchmarks), and `Compute` covers local task
/// execution in the DES backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CollKind {
    /// Broadcast of the inverted diagonal block down the column.
    DiagBcast = 0,
    /// Transpose exchange of L column blocks to the row.
    Transpose = 1,
    /// `Col-Bcast`: broadcast of L column blocks within the column.
    ColBcast = 2,
    /// `Row-Reduce`: reduction of update contributions within the row.
    RowReduce = 3,
    /// Reduction of diagonal-block contributions.
    DiagReduce = 4,
    /// Redistribution of computed Ainv blocks back across the anti-diagonal.
    AinvTranspose = 5,
    /// A bare tree broadcast outside any selected-inversion phase.
    Bcast = 6,
    /// A bare tree reduction outside any selected-inversion phase.
    Reduce = 7,
    /// Barrier-style synchronization.
    Barrier = 8,
    /// Local computation (DES task execution).
    Compute = 9,
    /// Anything not otherwise classified.
    Other = 10,
}

impl CollKind {
    /// Every kind, in index order.
    pub const ALL: [CollKind; 11] = [
        CollKind::DiagBcast,
        CollKind::Transpose,
        CollKind::ColBcast,
        CollKind::RowReduce,
        CollKind::DiagReduce,
        CollKind::AinvTranspose,
        CollKind::Bcast,
        CollKind::Reduce,
        CollKind::Barrier,
        CollKind::Compute,
        CollKind::Other,
    ];

    /// Dense index for table/array keying.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`CollKind::index`].
    pub fn from_index(i: usize) -> Option<CollKind> {
        Self::ALL.get(i).copied()
    }

    /// Stable display name (used in Chrome traces and summary tables).
    pub fn name(self) -> &'static str {
        match self {
            CollKind::DiagBcast => "DiagBcast",
            CollKind::Transpose => "Transpose",
            CollKind::ColBcast => "ColBcast",
            CollKind::RowReduce => "RowReduce",
            CollKind::DiagReduce => "DiagReduce",
            CollKind::AinvTranspose => "AinvTranspose",
            CollKind::Bcast => "Bcast",
            CollKind::Reduce => "Reduce",
            CollKind::Barrier => "Barrier",
            CollKind::Compute => "Compute",
            CollKind::Other => "Other",
        }
    }
}

/// Span/event key: a supernode index, or [`NO_KEY`] when there is none.
pub const NO_KEY: u64 = u64::MAX;

/// What a fault-injection (or fault-masking) incident did.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A message left this rank with injected extra latency.
    Delayed,
    /// A message left this rank twice (injected duplication).
    Duplicated,
    /// A message was held back and overtaken by a later one (injected
    /// reordering).
    Reordered,
    /// The receive side recognized and dropped a stale duplicate
    /// (the masking layer working as intended).
    DuplicateSuppressed,
    /// This rank crashed (injected).
    Crashed,
    /// This rank stopped making progress (injected).
    Stalled,
    /// A message was lost in flight (injected loss), or a stale-epoch
    /// delivery was discarded by the recovery layer with its accounting
    /// reversed.
    Dropped,
    /// The reliable transport re-sent an unacknowledged message after its
    /// retransmission deadline expired.
    Retransmit,
}

impl FaultKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Delayed => "delayed",
            FaultKind::Duplicated => "duplicated",
            FaultKind::Reordered => "reordered",
            FaultKind::DuplicateSuppressed => "dup-suppressed",
            FaultKind::Crashed => "crashed",
            FaultKind::Stalled => "stalled",
            FaultKind::Dropped => "dropped",
            FaultKind::Retransmit => "retransmit",
        }
    }
}

/// One recorded event on one rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start time in microseconds (wall time for mpisim, simulated time
    /// for the DES backend).
    pub ts_us: u64,
    pub kind: EventKind,
}

/// Payload of a [`TraceEvent`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: a collective keyed by `(coll, key)` or a task.
    Span { coll: CollKind, key: u64, end_us: u64 },
    /// A point-to-point message left this rank. `clock` is the sender's
    /// Lamport clock at the send instant and `idx` the sender's monotonic
    /// send index, so `(rank, idx)` names this send uniquely across the
    /// whole run.
    MsgSend { peer: usize, tag: u64, bytes: u64, coll: CollKind, clock: u64, idx: u64 },
    /// A point-to-point message was consumed on this rank. `clock` is the
    /// receiver's Lamport clock *after* merging the sender's (`max + 1`);
    /// `idx` is the matching send's index on `peer`, making the pair
    /// `(peer, idx)` the causal edge back to the originating
    /// [`EventKind::MsgSend`].
    MsgRecv { peer: usize, tag: u64, bytes: u64, coll: CollKind, clock: u64, idx: u64 },
    /// The out-of-order stash changed size (emitted on change only).
    StashDepth { depth: usize },
    /// The number of nonblocking collectives in flight on this rank
    /// changed (emitted on change only) — the async engine's
    /// communication/computation overlap counter.
    Outstanding { count: usize },
    /// The running total of reliable-transport retransmissions issued by
    /// this rank changed (emitted once per retransmission) — the loss-
    /// recovery counter track.
    Retransmits { count: u64 },
    /// Time this rank spent blocked waiting for a message, classified
    /// Scalasca-style: `wait_us` is late-sender time (blocked before the
    /// matching send was even issued), `transfer_us` is the remainder of
    /// the blocked interval (the message was in flight / being drained).
    /// `ts_us` is the moment the receive was posted (mpisim) or the rank
    /// went idle (DES). `cause`, when known, is the `(sender rank, send
    /// idx)` of the message whose arrival ended the wait — the causal edge
    /// blame-chain extraction follows upstream.
    Wait { coll: CollKind, key: u64, wait_us: u64, transfer_us: u64, cause: Option<(usize, u64)> },
    /// A fault was injected on (or masked by) this rank.
    Fault { what: FaultKind, peer: usize, tag: u64 },
}

impl TraceEvent {
    /// One-line human-readable rendition, used in stall diagnostics
    /// ("trace tail") and debugging output.
    pub fn describe(&self) -> String {
        let t = self.ts_us;
        match &self.kind {
            EventKind::Span { coll, key, end_us } => {
                format!("[{t} µs] span {} key={key} ({} µs)", coll.name(), end_us - t)
            }
            EventKind::MsgSend { peer, tag, bytes, coll, clock, idx } => {
                format!(
                    "[{t} µs] send -> {peer} tag={tag} {bytes} B ({}) clk={clock} idx={idx}",
                    coll.name()
                )
            }
            EventKind::MsgRecv { peer, tag, bytes, coll, clock, idx } => {
                format!(
                    "[{t} µs] recv <- {peer} tag={tag} {bytes} B ({}) clk={clock} idx={idx}",
                    coll.name()
                )
            }
            EventKind::StashDepth { depth } => format!("[{t} µs] stash depth {depth}"),
            EventKind::Outstanding { count } => {
                format!("[{t} µs] outstanding collectives {count}")
            }
            EventKind::Retransmits { count } => {
                format!("[{t} µs] retransmissions so far {count}")
            }
            EventKind::Wait { coll, wait_us, transfer_us, cause, .. } => {
                let by = cause.map_or(String::new(), |(r, i)| format!(", ended by {r}:{i}"));
                format!(
                    "[{t} µs] blocked {} µs (wait {wait_us} + transfer {transfer_us}, {}{by})",
                    wait_us + transfer_us,
                    coll.name()
                )
            }
            EventKind::Fault { what, peer, tag } => {
                format!("[{t} µs] fault {} peer={peer} tag={tag}", what.name())
            }
        }
    }
}

/// Packs `(coll, supernode)` into the 32-bit task tag carried by DES task
/// graphs: the kind in the top 8 bits, the supernode in the low 24.
pub fn pack_task_tag(coll: CollKind, supernode: usize) -> u32 {
    debug_assert!(supernode < (1 << 24), "supernode {supernode} overflows task tag");
    ((coll.index() as u32) << 24) | (supernode as u32 & 0x00ff_ffff)
}

/// Inverse of [`pack_task_tag`].
pub fn unpack_task_tag(tag: u32) -> (CollKind, usize) {
    let coll = CollKind::from_index((tag >> 24) as usize).unwrap_or(CollKind::Other);
    (coll, (tag & 0x00ff_ffff) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for k in CollKind::ALL {
            assert_eq!(CollKind::from_index(k.index()), Some(k));
        }
        assert_eq!(CollKind::from_index(CollKind::ALL.len()), None);
    }

    #[test]
    fn task_tag_roundtrip() {
        for k in CollKind::ALL {
            for sn in [0usize, 1, 1023, (1 << 24) - 1] {
                assert_eq!(unpack_task_tag(pack_task_tag(k, sn)), (k, sn));
            }
        }
    }
}
