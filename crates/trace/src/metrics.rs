//! Per-rank counters and fixed-bucket histograms.

use crate::event::CollKind;

/// Number of [`CollKind`] variants (array dimension for per-kind tables).
pub const N_KINDS: usize = CollKind::ALL.len();

/// Message/byte/time counters for one [`CollKind`] on one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindCounters {
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_recv: u64,
    pub bytes_recv: u64,
    /// Completed spans attributed to this kind.
    pub spans: u64,
    /// Total time inside those spans, in microseconds.
    pub span_time_us: u64,
    /// Late-sender wait time (µs): blocked on a receive before the
    /// matching send was issued (mpisim), or core-idle before a task of
    /// this kind could start (DES).
    pub wait_us: u64,
    /// Transfer time (µs): the rest of a blocked-receive interval (the
    /// message was already in flight), or simulated in-flight time of
    /// messages consumed by tasks of this kind (DES).
    pub transfer_us: u64,
}

/// Metrics registry for one rank.
///
/// All updates are O(1) array writes; the registry allocates only when a
/// send is attributed to a tree depth deeper than any seen before.
#[derive(Clone, Debug)]
pub struct RankMetrics {
    per_kind: [KindCounters; N_KINDS],
    /// Bytes sent while at depth `d` of the active collective tree.
    pub depth_sent_bytes: Vec<u64>,
    /// Messages sent while at depth `d` of the active collective tree.
    pub depth_sent_msgs: Vec<u64>,
    /// Histogram of sent message sizes: bucket `b` counts messages with
    /// `2^(b-1) < bytes <= 2^b` (bucket 0 is empty messages).
    pub msg_size_log2: [u64; 33],
    /// High-water mark of the out-of-order stash.
    pub stash_hwm: usize,
    /// High-water mark of simultaneously outstanding nonblocking
    /// collectives (the async engine's communication/computation overlap:
    /// a synchronous schedule never exceeds 1).
    pub outstanding_hwm: usize,
    /// Payload bytes physically copied on this rank (packing a buffer for
    /// a send). Forwarded shared payloads add nothing here, so this is the
    /// data-movement cost the zero-copy paths avoid — distinct from the
    /// logical `bytes_sent`/`bytes_recv` volumes, which are unaffected.
    pub bytes_copied: u64,
    /// Messages the reliable transport re-sent from this rank after a
    /// retransmission deadline expired. Control-plane accounting only:
    /// never added to the logical `bytes_sent`/`msgs_sent` volumes, so
    /// every trace==replay identity stays bit-exact under loss.
    pub retransmits: u64,
    /// Payload bytes carried by those retransmissions plus ack traffic,
    /// kept strictly separate from the logical volumes like
    /// [`RankMetrics::retransmits`].
    pub retrans_bytes: u64,
    /// Tasks executed by this rank's intra-rank work-stealing pool.
    /// Scheduling-only accounting: the pool never reorders floating-point
    /// arithmetic, so these counters carry no numerical meaning — they
    /// measure how the local compute was spread over workers.
    pub pool_executed: u64,
    /// Of [`RankMetrics::pool_executed`], tasks obtained by stealing from
    /// another worker's deque (the load-balancing traffic of the pool).
    pub pool_stolen: u64,
    /// Total wall time pool participants spent inside task bodies, in
    /// microseconds (summed across workers, so it can exceed the run's
    /// elapsed time — that excess IS the intra-rank parallelism).
    pub pool_busy_us: u64,
    /// Number of pool participants (workers + the submitting thread).
    pub pool_workers: usize,
}

impl Default for RankMetrics {
    fn default() -> Self {
        Self {
            per_kind: [KindCounters::default(); N_KINDS],
            depth_sent_bytes: Vec::new(),
            depth_sent_msgs: Vec::new(),
            msg_size_log2: [0; 33],
            stash_hwm: 0,
            outstanding_hwm: 0,
            bytes_copied: 0,
            retransmits: 0,
            retrans_bytes: 0,
            pool_executed: 0,
            pool_stolen: 0,
            pool_busy_us: 0,
            pool_workers: 0,
        }
    }
}

fn log2_bucket(bytes: u64) -> usize {
    if bytes == 0 {
        0
    } else {
        (64 - (bytes - 1).leading_zeros() as usize).min(32)
    }
}

impl RankMetrics {
    /// Counters for `coll`.
    pub fn kind(&self, coll: CollKind) -> &KindCounters {
        &self.per_kind[coll.index()]
    }

    /// Records a sent message, optionally attributed to a tree depth.
    pub fn on_send(&mut self, coll: CollKind, bytes: u64, depth: Option<usize>) {
        let c = &mut self.per_kind[coll.index()];
        c.msgs_sent += 1;
        c.bytes_sent += bytes;
        self.msg_size_log2[log2_bucket(bytes)] += 1;
        if let Some(d) = depth {
            if d >= self.depth_sent_bytes.len() {
                self.depth_sent_bytes.resize(d + 1, 0);
                self.depth_sent_msgs.resize(d + 1, 0);
            }
            self.depth_sent_bytes[d] += bytes;
            self.depth_sent_msgs[d] += 1;
        }
    }

    /// Records a consumed message.
    pub fn on_recv(&mut self, coll: CollKind, bytes: u64) {
        let c = &mut self.per_kind[coll.index()];
        c.msgs_recv += 1;
        c.bytes_recv += bytes;
    }

    /// Reverses one [`RankMetrics::on_recv`] (the runtime re-stashed the
    /// message, so it was not actually consumed).
    pub fn on_recv_undo(&mut self, coll: CollKind, bytes: u64) {
        let c = &mut self.per_kind[coll.index()];
        c.msgs_recv = c.msgs_recv.saturating_sub(1);
        c.bytes_recv = c.bytes_recv.saturating_sub(bytes);
    }

    /// Records a completed span.
    pub fn on_span(&mut self, coll: CollKind, dur_us: u64) {
        let c = &mut self.per_kind[coll.index()];
        c.spans += 1;
        c.span_time_us += dur_us;
    }

    /// Records classified blocked time: `wait_us` of late-sender wait plus
    /// `transfer_us` of transfer, attributed to `coll`.
    pub fn on_wait(&mut self, coll: CollKind, wait_us: u64, transfer_us: u64) {
        let c = &mut self.per_kind[coll.index()];
        c.wait_us += wait_us;
        c.transfer_us += transfer_us;
    }

    /// Updates the stash high-water mark.
    pub fn on_stash_depth(&mut self, depth: usize) {
        self.stash_hwm = self.stash_hwm.max(depth);
    }

    /// Updates the outstanding-collectives high-water mark.
    pub fn on_outstanding(&mut self, count: usize) {
        self.outstanding_hwm = self.outstanding_hwm.max(count);
    }

    /// Records `bytes` of physical payload copying.
    pub fn on_copy(&mut self, bytes: u64) {
        self.bytes_copied += bytes;
    }

    /// Records one reliable-transport retransmission (or ack) of `bytes`
    /// control-plane traffic. Returns the new retransmission total so the
    /// sink can emit a counter event without re-reading the registry.
    pub fn on_retransmit(&mut self, bytes: u64) -> u64 {
        self.retransmits += 1;
        self.retrans_bytes += bytes;
        self.retransmits
    }

    /// Folds one run's intra-rank pool totals into the registry. Counters
    /// accumulate (a rank may run several pool epochs per trace); the
    /// worker count keeps the maximum seen.
    pub fn on_pool(&mut self, executed: u64, stolen: u64, busy_us: u64, workers: usize) {
        self.pool_executed += executed;
        self.pool_stolen += stolen;
        self.pool_busy_us += busy_us;
        self.pool_workers = self.pool_workers.max(workers);
    }

    /// Total bytes sent across all kinds.
    pub fn total_sent_bytes(&self) -> u64 {
        self.per_kind.iter().map(|c| c.bytes_sent).sum()
    }

    /// Total bytes received across all kinds.
    pub fn total_recv_bytes(&self) -> u64 {
        self.per_kind.iter().map(|c| c.bytes_recv).sum()
    }

    /// Total messages sent across all kinds.
    pub fn total_sent_msgs(&self) -> u64 {
        self.per_kind.iter().map(|c| c.msgs_sent).sum()
    }

    /// Total span time across all kinds (µs).
    pub fn total_span_time_us(&self) -> u64 {
        self.per_kind.iter().map(|c| c.span_time_us).sum()
    }

    /// Total late-sender wait time across all kinds (µs).
    pub fn total_wait_us(&self) -> u64 {
        self.per_kind.iter().map(|c| c.wait_us).sum()
    }

    /// Total transfer time across all kinds (µs).
    pub fn total_transfer_us(&self) -> u64 {
        self.per_kind.iter().map(|c| c.transfer_us).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_buckets() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 2);
        assert_eq!(log2_bucket(1024), 10);
        assert_eq!(log2_bucket(1025), 11);
        assert_eq!(log2_bucket(u64::MAX), 32);
    }

    #[test]
    fn send_recv_accounting() {
        let mut m = RankMetrics::default();
        m.on_send(CollKind::ColBcast, 100, Some(2));
        m.on_send(CollKind::ColBcast, 50, Some(0));
        m.on_recv(CollKind::RowReduce, 30);
        m.on_span(CollKind::ColBcast, 7);
        assert_eq!(m.kind(CollKind::ColBcast).bytes_sent, 150);
        assert_eq!(m.kind(CollKind::ColBcast).msgs_sent, 2);
        assert_eq!(m.kind(CollKind::ColBcast).spans, 1);
        assert_eq!(m.kind(CollKind::ColBcast).span_time_us, 7);
        assert_eq!(m.kind(CollKind::RowReduce).bytes_recv, 30);
        assert_eq!(m.depth_sent_bytes, vec![50, 0, 100]);
        assert_eq!(m.depth_sent_msgs, vec![1, 0, 1]);
        assert_eq!(m.total_sent_bytes(), 150);

        m.on_recv_undo(CollKind::RowReduce, 30);
        assert_eq!(m.kind(CollKind::RowReduce).bytes_recv, 0);
        assert_eq!(m.kind(CollKind::RowReduce).msgs_recv, 0);
    }

    #[test]
    fn size_buckets_at_exact_powers_of_two() {
        // bytes == 2^b must land in bucket b, not b+1 (the bucket covers
        // 2^(b-1) < bytes <= 2^b); bytes == 2^b + 1 spills into b+1.
        for b in 1..32usize {
            assert_eq!(log2_bucket(1u64 << b), b, "2^{b}");
            assert_eq!(log2_bucket((1u64 << b) + 1), b + 1, "2^{b}+1");
        }
        assert_eq!(log2_bucket(1u64 << 32), 32);
        // Everything past the last bucket boundary saturates into bucket 32.
        assert_eq!(log2_bucket((1u64 << 32) + 1), 32);
        assert_eq!(log2_bucket(1u64 << 63), 32);
    }

    #[test]
    fn wait_transfer_accounting() {
        let mut m = RankMetrics::default();
        m.on_wait(CollKind::ColBcast, 10, 3);
        m.on_wait(CollKind::ColBcast, 5, 0);
        m.on_wait(CollKind::RowReduce, 0, 7);
        assert_eq!(m.kind(CollKind::ColBcast).wait_us, 15);
        assert_eq!(m.kind(CollKind::ColBcast).transfer_us, 3);
        assert_eq!(m.kind(CollKind::RowReduce).transfer_us, 7);
        assert_eq!(m.total_wait_us(), 15);
        assert_eq!(m.total_transfer_us(), 10);
    }

    #[test]
    fn pool_accounting_accumulates() {
        let mut m = RankMetrics::default();
        m.on_pool(10, 3, 500, 4);
        m.on_pool(6, 0, 200, 2);
        assert_eq!(m.pool_executed, 16);
        assert_eq!(m.pool_stolen, 3);
        assert_eq!(m.pool_busy_us, 700);
        assert_eq!(m.pool_workers, 4, "worker count keeps the maximum");
    }

    #[test]
    fn stash_hwm_monotone() {
        let mut m = RankMetrics::default();
        m.on_stash_depth(3);
        m.on_stash_depth(1);
        assert_eq!(m.stash_hwm, 3);
    }
}
