//! The per-rank trace sink and the assembled multi-rank trace.
//!
//! A [`RankTracer`] is owned by exactly one rank (an mpisim rank thread, or
//! one simulated rank inside the DES engine). The disabled tracer is a
//! `None` — every hook is a single branch on that option, so instrumented
//! code pays nothing when tracing is off.

use crate::event::{CollKind, EventKind, FaultKind, TraceEvent, NO_KEY};
use crate::metrics::RankMetrics;
use pselinv_trees::volume::VolumeStats;
use std::time::Instant;

#[derive(Clone, Copy, Debug)]
enum ClockInner {
    /// Real time relative to a shared epoch (mpisim backend). The epoch is
    /// the same `Instant` on every rank, so timestamps align across ranks.
    Wall { epoch: Instant },
    /// Externally-driven time (DES backend simulated clock).
    Manual { now_us: u64 },
}

impl ClockInner {
    fn now_us(&self) -> u64 {
        match self {
            ClockInner::Wall { epoch } => epoch.elapsed().as_micros() as u64,
            ClockInner::Manual { now_us } => *now_us,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Scope {
    coll: CollKind,
    key: u64,
    start_us: u64,
}

#[derive(Debug)]
struct Inner {
    rank: usize,
    clock: ClockInner,
    /// Open attribution scopes, innermost last. Sends/recvs are attributed
    /// to the innermost scope's kind.
    scopes: Vec<Scope>,
    /// Tree depth of this rank in the collective currently in flight, for
    /// per-depth byte attribution.
    depth: Option<usize>,
    /// Last reported stash depth (events are emitted on change only).
    last_stash: usize,
    /// Last reported outstanding-collectives count (events are emitted on
    /// change only).
    last_outstanding: usize,
    events: Vec<TraceEvent>,
    metrics: RankMetrics,
}

/// Event/metrics sink for one rank. Construct with
/// [`RankTracer::disabled`], [`RankTracer::wall`] or [`RankTracer::manual`].
#[derive(Debug, Default)]
pub struct RankTracer(Option<Box<Inner>>);

impl RankTracer {
    /// A tracer whose every hook is a no-op.
    pub fn disabled() -> Self {
        RankTracer(None)
    }

    /// An enabled tracer using wall time relative to `epoch`. Pass the same
    /// epoch to every rank of a run so timestamps align.
    pub fn wall(rank: usize, epoch: Instant) -> Self {
        RankTracer(Some(Box::new(Inner {
            rank,
            clock: ClockInner::Wall { epoch },
            scopes: Vec::new(),
            depth: None,
            last_stash: 0,
            last_outstanding: 0,
            events: Vec::new(),
            metrics: RankMetrics::default(),
        })))
    }

    /// An enabled tracer whose clock is driven by [`RankTracer::set_time_us`]
    /// (used by the DES backend with simulated time).
    pub fn manual(rank: usize) -> Self {
        RankTracer(Some(Box::new(Inner {
            rank,
            clock: ClockInner::Manual { now_us: 0 },
            scopes: Vec::new(),
            depth: None,
            last_stash: 0,
            last_outstanding: 0,
            events: Vec::new(),
            metrics: RankMetrics::default(),
        })))
    }

    /// Whether hooks record anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Advances a manual clock. No-op for disabled or wall-clock tracers.
    pub fn set_time_us(&mut self, us: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            if let ClockInner::Manual { now_us } = &mut inner.clock {
                *now_us = us;
            }
        }
    }

    /// Current timestamp (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.0.as_deref().map_or(0, |i| i.clock.now_us())
    }

    /// Opens an attribution scope: until the matching
    /// [`RankTracer::pop_scope`], sends and receives on this rank are
    /// accounted to `coll`, and the scope itself becomes a span keyed by
    /// `(coll, key)`.
    pub fn push_scope(&mut self, coll: CollKind, key: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            let start_us = inner.clock.now_us();
            inner.scopes.push(Scope { coll, key, start_us });
        }
    }

    /// Closes the innermost scope, recording its span.
    pub fn pop_scope(&mut self) {
        if let Some(inner) = self.0.as_deref_mut() {
            if let Some(s) = inner.scopes.pop() {
                let end_us = inner.clock.now_us().max(s.start_us);
                inner.events.push(TraceEvent {
                    ts_us: s.start_us,
                    kind: EventKind::Span { coll: s.coll, key: s.key, end_us },
                });
                inner.metrics.on_span(s.coll, end_us - s.start_us);
            }
        }
    }

    /// Called by a collective implementation on entry. Records this rank's
    /// tree `depth` for per-depth attribution, and — only when no ambient
    /// scope is already open (i.e. the collective is used bare, outside a
    /// phase) — opens a `(coll, key)` scope. Returns whether a scope was
    /// pushed; pass that to [`RankTracer::coll_exit`].
    pub fn coll_enter(&mut self, coll: CollKind, key: u64, depth: Option<usize>) -> bool {
        let Some(inner) = self.0.as_deref_mut() else { return false };
        inner.depth = depth;
        if inner.scopes.is_empty() {
            let start_us = inner.clock.now_us();
            inner.scopes.push(Scope { coll, key, start_us });
            true
        } else {
            false
        }
    }

    /// Called by a collective implementation on exit, with the value
    /// returned by the matching [`RankTracer::coll_enter`].
    pub fn coll_exit(&mut self, pushed: bool) {
        if pushed {
            self.pop_scope();
        }
        if let Some(inner) = self.0.as_deref_mut() {
            inner.depth = None;
        }
    }

    /// Records a message leaving this rank. `clock` is the sender's Lamport
    /// clock at the send, `idx` its per-rank monotonic send index (pass 0
    /// for both when no causal layer is in play, e.g. unit fixtures).
    pub fn msg_send(&mut self, peer: usize, tag: u64, bytes: u64, clock: u64, idx: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            let coll = inner.scopes.last().map_or(CollKind::Other, |s| s.coll);
            let ts_us = inner.clock.now_us();
            inner.events.push(TraceEvent {
                ts_us,
                kind: EventKind::MsgSend { peer, tag, bytes, coll, clock, idx },
            });
            inner.metrics.on_send(coll, bytes, inner.depth);
        }
    }

    /// Records a message consumed on this rank. `clock` is the receiver's
    /// Lamport clock after merging the sender's; `idx` is the matching
    /// send's index on `peer`.
    pub fn msg_recv(&mut self, peer: usize, tag: u64, bytes: u64, clock: u64, idx: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            let coll = inner.scopes.last().map_or(CollKind::Other, |s| s.coll);
            let ts_us = inner.clock.now_us();
            inner.events.push(TraceEvent {
                ts_us,
                kind: EventKind::MsgRecv { peer, tag, bytes, coll, clock, idx },
            });
            inner.metrics.on_recv(coll, bytes);
        }
    }

    /// Reverses the most recent [`RankTracer::msg_recv`]: the runtime put
    /// the message back (stash), so it was not actually consumed.
    pub fn msg_recv_undo(&mut self) {
        if let Some(inner) = self.0.as_deref_mut() {
            if let Some(pos) =
                inner.events.iter().rposition(|e| matches!(e.kind, EventKind::MsgRecv { .. }))
            {
                if let EventKind::MsgRecv { bytes, coll, .. } = inner.events.remove(pos).kind {
                    inner.metrics.on_recv_undo(coll, bytes);
                }
            }
        }
    }

    /// Classifies a blocked receive that was posted at `posted_us` and
    /// completed *now*, against a message sent at `sent_us` (all three on
    /// the same clock). The blocked interval splits Scalasca-style into
    /// late-sender wait (posted before the send was issued) and transfer
    /// (the message was in flight); the two always sum to the blocked
    /// duration. Attributed to the innermost open scope's kind. `cause`,
    /// when known, names the `(sender rank, send idx)` of the message whose
    /// arrival ended the wait.
    pub fn recv_wait(&mut self, posted_us: u64, sent_us: u64, cause: Option<(usize, u64)>) {
        if let Some(inner) = self.0.as_deref_mut() {
            let done_us = inner.clock.now_us().max(posted_us);
            let wait_us = sent_us.min(done_us).saturating_sub(posted_us);
            let transfer_us = done_us - sent_us.max(posted_us).min(done_us);
            let (coll, key) =
                inner.scopes.last().map_or((CollKind::Other, NO_KEY), |s| (s.coll, s.key));
            inner.events.push(TraceEvent {
                ts_us: posted_us,
                kind: EventKind::Wait { coll, key, wait_us, transfer_us, cause },
            });
            inner.metrics.on_wait(coll, wait_us, transfer_us);
        }
    }

    /// Records an idle-wait span with explicit timestamps and kind (used by
    /// the DES backend: the core sat idle in `[start_us, end_us)` before a
    /// task of kind `coll` could start). `cause` as in
    /// [`RankTracer::recv_wait`].
    pub fn wait_at(
        &mut self,
        coll: CollKind,
        key: u64,
        start_us: u64,
        end_us: u64,
        cause: Option<(usize, u64)>,
    ) {
        if let Some(inner) = self.0.as_deref_mut() {
            let wait_us = end_us.saturating_sub(start_us);
            inner.events.push(TraceEvent {
                ts_us: start_us,
                kind: EventKind::Wait { coll, key, wait_us, transfer_us: 0, cause },
            });
            inner.metrics.on_wait(coll, wait_us, 0);
        }
    }

    /// Accumulates pure transfer time (µs) under `coll` without an event
    /// (used by the DES backend: in-flight time of a consumed message,
    /// already visible as its send/recv instant pair).
    pub fn transfer_as(&mut self, coll: CollKind, transfer_us: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            inner.metrics.on_wait(coll, 0, transfer_us);
        }
    }

    /// Records `bytes` of physical payload copying (metrics only, no
    /// event: copies are frequent and carry no timing information).
    pub fn copy_bytes(&mut self, bytes: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            inner.metrics.on_copy(bytes);
        }
    }

    /// Reports the current out-of-order stash depth. Updates the high-water
    /// mark; emits a counter event only when the depth changed.
    pub fn stash_depth(&mut self, depth: usize) {
        if let Some(inner) = self.0.as_deref_mut() {
            inner.metrics.on_stash_depth(depth);
            if depth != inner.last_stash {
                inner.last_stash = depth;
                let ts_us = inner.clock.now_us();
                inner.events.push(TraceEvent { ts_us, kind: EventKind::StashDepth { depth } });
            }
        }
    }

    /// Reports the number of nonblocking collectives currently in flight on
    /// this rank (the async engine's overlap signal). Updates the
    /// high-water mark; emits a counter event only when the count changed.
    pub fn outstanding(&mut self, count: usize) {
        if let Some(inner) = self.0.as_deref_mut() {
            inner.metrics.on_outstanding(count);
            if count != inner.last_outstanding {
                inner.last_outstanding = count;
                let ts_us = inner.clock.now_us();
                inner.events.push(TraceEvent { ts_us, kind: EventKind::Outstanding { count } });
            }
        }
    }

    /// Records a completed span with explicit timestamps (used by the DES
    /// backend, which knows task start/finish times when the finish event
    /// fires).
    pub fn span_at(&mut self, coll: CollKind, key: u64, start_us: u64, end_us: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            let end_us = end_us.max(start_us);
            inner
                .events
                .push(TraceEvent { ts_us: start_us, kind: EventKind::Span { coll, key, end_us } });
            inner.metrics.on_span(coll, end_us - start_us);
        }
    }

    /// Records a message event with the attribution kind supplied by the
    /// caller instead of the ambient scope (used by the DES backend, whose
    /// edges carry their own `(coll, supernode)` task tags).
    #[allow(clippy::too_many_arguments)]
    pub fn msg_send_as(
        &mut self,
        coll: CollKind,
        peer: usize,
        tag: u64,
        bytes: u64,
        depth: Option<usize>,
        clock: u64,
        idx: u64,
    ) {
        if let Some(inner) = self.0.as_deref_mut() {
            let ts_us = inner.clock.now_us();
            inner.events.push(TraceEvent {
                ts_us,
                kind: EventKind::MsgSend { peer, tag, bytes, coll, clock, idx },
            });
            inner.metrics.on_send(coll, bytes, depth);
        }
    }

    /// Receive-side counterpart of [`RankTracer::msg_send_as`].
    pub fn msg_recv_as(
        &mut self,
        coll: CollKind,
        peer: usize,
        tag: u64,
        bytes: u64,
        clock: u64,
        idx: u64,
    ) {
        if let Some(inner) = self.0.as_deref_mut() {
            let ts_us = inner.clock.now_us();
            inner.events.push(TraceEvent {
                ts_us,
                kind: EventKind::MsgRecv { peer, tag, bytes, coll, clock, idx },
            });
            inner.metrics.on_recv(coll, bytes);
        }
    }

    /// Records a fault-injection (or fault-masking) incident on this rank.
    /// Pure event, no metrics impact: faults perturb delivery, they are not
    /// traffic.
    pub fn fault(&mut self, what: FaultKind, peer: usize, tag: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            let ts_us = inner.clock.now_us();
            inner.events.push(TraceEvent { ts_us, kind: EventKind::Fault { what, peer, tag } });
        }
    }

    /// Records one reliable-transport retransmission of `bytes` toward
    /// `peer`: a [`FaultKind::Retransmit`] instant plus a
    /// [`EventKind::Retransmits`] counter sample. Control-plane metrics
    /// only — the logical traffic counters never move.
    pub fn retransmit(&mut self, peer: usize, tag: u64, bytes: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            let ts_us = inner.clock.now_us();
            inner.events.push(TraceEvent {
                ts_us,
                kind: EventKind::Fault { what: FaultKind::Retransmit, peer, tag },
            });
            let count = inner.metrics.on_retransmit(bytes);
            inner.events.push(TraceEvent { ts_us, kind: EventKind::Retransmits { count } });
        }
    }

    /// Folds the intra-rank task-pool totals for this run into the rank's
    /// metrics (typically called once at rank exit with
    /// `Pool::stats()` sums). Per-worker busy intervals go in separately
    /// via [`RankTracer::span_at`] with [`CollKind::Compute`].
    pub fn pool_stats(&mut self, executed: u64, stolen: u64, busy_us: u64, workers: usize) {
        if let Some(inner) = self.0.as_deref_mut() {
            inner.metrics.on_pool(executed, stolen, busy_us, workers);
        }
    }

    /// The last `n` recorded events, formatted one per line (oldest first).
    /// Used by the mpisim watchdog to attach a per-rank trace tail to its
    /// stall diagnostic. Empty when disabled.
    pub fn tail(&self, n: usize) -> Vec<String> {
        self.0.as_deref().map_or_else(Vec::new, |i| {
            let start = i.events.len().saturating_sub(n);
            i.events[start..].iter().map(TraceEvent::describe).collect()
        })
    }

    /// Read access to the metrics accumulated so far (None when disabled).
    pub fn metrics(&self) -> Option<&RankMetrics> {
        self.0.as_deref().map(|i| &i.metrics)
    }

    /// Consumes the tracer, yielding this rank's trace. Returns `None` for
    /// a disabled tracer. Any scopes still open are closed at the current
    /// time.
    pub fn finish(mut self) -> Option<RankTrace> {
        while self.0.as_deref().is_some_and(|i| !i.scopes.is_empty()) {
            self.pop_scope();
        }
        self.0.take().map(|inner| RankTrace {
            rank: inner.rank,
            events: inner.events,
            metrics: inner.metrics,
        })
    }
}

/// Everything one rank recorded.
#[derive(Clone, Debug, Default)]
pub struct RankTrace {
    pub rank: usize,
    pub events: Vec<TraceEvent>,
    pub metrics: RankMetrics,
}

/// A complete run: one [`RankTrace`] per rank, plus a label and a run
/// metadata block (scheme, grid, seed, backend, …) so exported reports are
/// self-describing.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Free-form run label (workload / scheme / backend), shown in exports.
    pub label: String,
    /// Key/value run metadata, in insertion order. Included verbatim in
    /// exporters; later values win on duplicate keys.
    pub meta: Vec<(String, String)>,
    pub ranks: Vec<RankTrace>,
}

impl Trace {
    /// Assembles a trace, sorting ranks by rank id.
    pub fn new(label: impl Into<String>, mut ranks: Vec<RankTrace>) -> Self {
        ranks.sort_by_key(|r| r.rank);
        Trace { label: label.into(), meta: Vec::new(), ranks }
    }

    /// Adds (or overrides) one metadata entry, builder-style.
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_meta(key, value);
        self
    }

    /// Adds (or overrides) one metadata entry in place.
    pub fn set_meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        if let Some(e) = self.meta.iter_mut().find(|(k, _)| *k == key) {
            e.1 = value;
        } else {
            self.meta.push((key, value));
        }
    }

    /// Looks up a metadata value by key.
    pub fn meta_str(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Per-rank bytes sent under `coll`, in rank order.
    pub fn sent_bytes(&self, coll: CollKind) -> Vec<u64> {
        self.ranks.iter().map(|r| r.metrics.kind(coll).bytes_sent).collect()
    }

    /// Per-rank bytes received under `coll`, in rank order.
    pub fn recv_bytes(&self, coll: CollKind) -> Vec<u64> {
        self.ranks.iter().map(|r| r.metrics.kind(coll).bytes_recv).collect()
    }

    /// Min/max/median/mean/σ of per-rank sent bytes under `coll`.
    pub fn sent_stats(&self, coll: CollKind) -> VolumeStats {
        VolumeStats::from_volumes(&self.sent_bytes(coll))
    }

    /// Per-rank span time (µs) under `coll`, in rank order.
    pub fn span_time_us(&self, coll: CollKind) -> Vec<u64> {
        self.ranks.iter().map(|r| r.metrics.kind(coll).span_time_us).collect()
    }

    /// Per-rank late-sender wait time (µs) under `coll`, in rank order.
    pub fn wait_time_us(&self, coll: CollKind) -> Vec<u64> {
        self.ranks.iter().map(|r| r.metrics.kind(coll).wait_us).collect()
    }

    /// Per-rank transfer time (µs) under `coll`, in rank order.
    pub fn transfer_time_us(&self, coll: CollKind) -> Vec<u64> {
        self.ranks.iter().map(|r| r.metrics.kind(coll).transfer_us).collect()
    }

    /// Formats the per-rank summary table: for every kind with traffic or
    /// spans, the min/max/σ (plus median/mean) of per-rank sent bytes and
    /// span time — the same shape as the paper's Table I columns.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "trace summary: {} ({} ranks)", self.label, self.ranks.len());
        if !self.meta.is_empty() {
            let kv: Vec<String> = self.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(out, "run metadata: {}", kv.join(" "));
        }
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10}",
            "phase",
            "msgs",
            "sent.min B",
            "sent.max B",
            "sent.mean B",
            "sent.sigma",
            "time µs",
            "wait µs",
            "xfer µs"
        );
        for coll in CollKind::ALL {
            let msgs: u64 = self.ranks.iter().map(|r| r.metrics.kind(coll).msgs_sent).sum();
            let spans: u64 = self.ranks.iter().map(|r| r.metrics.kind(coll).spans).sum();
            let recvd: u64 = self.ranks.iter().map(|r| r.metrics.kind(coll).msgs_recv).sum();
            let wait: u64 = self.wait_time_us(coll).iter().sum();
            let xfer: u64 = self.transfer_time_us(coll).iter().sum();
            if msgs == 0 && spans == 0 && recvd == 0 && wait == 0 && xfer == 0 {
                continue;
            }
            let s = self.sent_stats(coll);
            let t: u64 = self.span_time_us(coll).iter().sum();
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>12.0} {:>12.0} {:>12.1} {:>12.1} {:>10} {:>10} {:>10}",
                coll.name(),
                msgs,
                s.min,
                s.max,
                s.mean,
                s.std_dev,
                t,
                wait,
                xfer
            );
        }
        // Stash depth is itself a hot-spot signal: report the worst rank
        // and the per-rank distribution, not just the global max.
        let hwms: Vec<usize> = self.ranks.iter().map(|r| r.metrics.stash_hwm).collect();
        let (hwm_rank, hwm) = hwms
            .iter()
            .enumerate()
            .max_by_key(|&(i, &h)| (h, std::cmp::Reverse(i)))
            .map(|(i, &h)| (self.ranks[i].rank, h))
            .unwrap_or((0, 0));
        let mean = if hwms.is_empty() {
            0.0
        } else {
            hwms.iter().sum::<usize>() as f64 / hwms.len() as f64
        };
        let nonzero = hwms.iter().filter(|&&h| h > 0).count();
        let _ = writeln!(
            out,
            "stash high-water: max {hwm} at rank {hwm_rank}, mean {mean:.2}, \
             {nonzero}/{} ranks ever stashed",
            hwms.len()
        );
        // Overlap signal from the async engine: how many nonblocking
        // collectives any rank ever had in flight at once (1 ≡ synchronous,
        // 0 ≡ the run never used the nonblocking engine). Printed
        // unconditionally so mpisim and DES summaries have the same shape.
        let o_max = self.ranks.iter().map(|r| r.metrics.outstanding_hwm).max().unwrap_or(0);
        let o_mean = if self.ranks.is_empty() {
            0.0
        } else {
            self.ranks.iter().map(|r| r.metrics.outstanding_hwm).sum::<usize>() as f64
                / self.ranks.len() as f64
        };
        let _ = writeln!(
            out,
            "outstanding collectives high-water: max {o_max}, mean {o_mean:.2} across ranks"
        );
        // Reliable-transport recovery work: retransmissions per rank (0
        // everywhere on a lossless run). Printed unconditionally so lossy
        // and lossless summaries have the same shape.
        let r_total: u64 = self.ranks.iter().map(|r| r.metrics.retransmits).sum();
        let r_bytes: u64 = self.ranks.iter().map(|r| r.metrics.retrans_bytes).sum();
        let (r_rank, r_max) = self
            .ranks
            .iter()
            .map(|r| (r.rank, r.metrics.retransmits))
            .max_by_key(|&(rank, n)| (n, std::cmp::Reverse(rank)))
            .unwrap_or((0, 0));
        let _ = writeln!(
            out,
            "retransmits: total {r_total} ({r_bytes} B control traffic), max {r_max} at rank {r_rank}"
        );
        // Intra-rank task pool: how much local compute ran as stolen-or-not
        // pool tasks (all zeros when the run used the fork-join path).
        // Printed unconditionally so pooled and unpooled summaries have the
        // same shape.
        let p_exec: u64 = self.ranks.iter().map(|r| r.metrics.pool_executed).sum();
        let p_stolen: u64 = self.ranks.iter().map(|r| r.metrics.pool_stolen).sum();
        let p_busy: u64 = self.ranks.iter().map(|r| r.metrics.pool_busy_us).sum();
        let p_workers = self.ranks.iter().map(|r| r.metrics.pool_workers).max().unwrap_or(0);
        let steal_pct = if p_exec == 0 { 0.0 } else { 100.0 * p_stolen as f64 / p_exec as f64 };
        let _ = writeln!(
            out,
            "pool tasks: executed {p_exec}, stolen {p_stolen} ({steal_pct:.1}%), \
             busy {p_busy} µs, {p_workers} workers/rank"
        );
        out
    }
}

/// Convenience: closes a pool of rank tracers into a [`Trace`], dropping
/// disabled ones. Returns `None` if every tracer was disabled.
pub fn collect(label: impl Into<String>, tracers: Vec<RankTracer>) -> Option<Trace> {
    let ranks: Vec<RankTrace> = tracers.into_iter().filter_map(RankTracer::finish).collect();
    if ranks.is_empty() {
        None
    } else {
        Some(Trace::new(label, ranks))
    }
}

/// Keys a span by supernode, mapping "no supernode" to [`NO_KEY`].
pub fn key_of(supernode: Option<usize>) -> u64 {
    supernode.map_or(NO_KEY, |s| s as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = RankTracer::disabled();
        assert!(!t.is_enabled());
        t.push_scope(CollKind::ColBcast, 1);
        t.msg_send(1, 7, 100, 0, 0);
        t.pop_scope();
        assert!(t.metrics().is_none());
        assert!(t.finish().is_none());
    }

    #[test]
    fn manual_clock_span_and_attribution() {
        let mut t = RankTracer::manual(3);
        t.set_time_us(10);
        t.push_scope(CollKind::ColBcast, 5);
        t.msg_send(1, 42, 100, 3, 1);
        t.set_time_us(25);
        t.pop_scope();
        let r = t.finish().unwrap();
        assert_eq!(r.rank, 3);
        assert_eq!(r.metrics.kind(CollKind::ColBcast).bytes_sent, 100);
        assert_eq!(r.metrics.kind(CollKind::ColBcast).span_time_us, 15);
        assert!(r.events.iter().any(|e| matches!(
            e.kind,
            EventKind::Span { coll: CollKind::ColBcast, key: 5, end_us: 25 }
        ) && e.ts_us == 10));
    }

    #[test]
    fn coll_enter_respects_ambient_scope() {
        let mut t = RankTracer::manual(0);
        // Bare collective: pushes its own scope.
        let pushed = t.coll_enter(CollKind::Bcast, 9, Some(1));
        assert!(pushed);
        t.msg_send(1, 0, 10, 1, 1);
        t.coll_exit(pushed);
        // Inside a phase scope: keeps the ambient attribution.
        t.push_scope(CollKind::ColBcast, 2);
        let pushed = t.coll_enter(CollKind::Bcast, 9, Some(0));
        assert!(!pushed);
        t.msg_send(1, 0, 20, 2, 2);
        t.coll_exit(pushed);
        t.pop_scope();
        let r = t.finish().unwrap();
        assert_eq!(r.metrics.kind(CollKind::Bcast).bytes_sent, 10);
        assert_eq!(r.metrics.kind(CollKind::ColBcast).bytes_sent, 20);
        // Depth attribution happened in both cases.
        assert_eq!(r.metrics.depth_sent_bytes, vec![20, 10]);
    }

    #[test]
    fn recv_undo_reverses_accounting() {
        let mut t = RankTracer::manual(0);
        t.msg_recv(2, 5, 64, 1, 0);
        t.msg_recv_undo();
        let r = t.finish().unwrap();
        assert_eq!(r.metrics.kind(CollKind::Other).msgs_recv, 0);
        assert_eq!(r.metrics.kind(CollKind::Other).bytes_recv, 0);
        assert!(!r.events.iter().any(|e| matches!(e.kind, EventKind::MsgRecv { .. })));
    }

    #[test]
    fn stash_depth_events_on_change_only() {
        let mut t = RankTracer::manual(0);
        t.stash_depth(1);
        t.stash_depth(1);
        t.stash_depth(2);
        t.stash_depth(0);
        let r = t.finish().unwrap();
        let n = r.events.iter().filter(|e| matches!(e.kind, EventKind::StashDepth { .. })).count();
        assert_eq!(n, 3);
        assert_eq!(r.metrics.stash_hwm, 2);
    }

    #[test]
    fn trace_summary_and_stats() {
        let mut a = RankTracer::manual(1);
        a.push_scope(CollKind::ColBcast, 0);
        a.msg_send(0, 0, 300, 1, 0);
        a.pop_scope();
        let mut b = RankTracer::manual(0);
        b.push_scope(CollKind::ColBcast, 0);
        b.msg_send(1, 0, 100, 1, 0);
        b.pop_scope();
        let trace = collect("unit", vec![a, b, RankTracer::disabled()]).unwrap();
        // Sorted by rank: rank 0 first.
        assert_eq!(trace.sent_bytes(CollKind::ColBcast), vec![100, 300]);
        let s = trace.sent_stats(CollKind::ColBcast);
        assert_eq!(s.min, 100.0);
        assert_eq!(s.max, 300.0);
        let table = trace.summary_table();
        assert!(table.contains("ColBcast"), "{table}");
        assert!(!table.contains("RowReduce"), "{table}");
    }

    #[test]
    fn recv_wait_splits_late_sender_from_transfer() {
        // posted at 10, sent at 30, completed at 45: 20 µs late-sender
        // wait + 15 µs transfer, summing to the 35 µs blocked interval.
        let mut t = RankTracer::manual(0);
        t.push_scope(CollKind::RowReduce, 7);
        t.set_time_us(45);
        t.recv_wait(10, 30, Some((2, 11)));
        t.pop_scope();
        let r = t.finish().unwrap();
        let k = r.metrics.kind(CollKind::RowReduce);
        assert_eq!(k.wait_us, 20);
        assert_eq!(k.transfer_us, 15);
        assert_eq!(k.wait_us + k.transfer_us, 35);
        assert!(r.events.iter().any(|e| matches!(
            e.kind,
            EventKind::Wait {
                coll: CollKind::RowReduce,
                key: 7,
                wait_us: 20,
                transfer_us: 15,
                cause: Some((2, 11)),
            }
        ) && e.ts_us == 10));
    }

    #[test]
    fn recv_wait_sender_first_is_pure_transfer() {
        // The send predates the post: no late-sender component.
        let mut t = RankTracer::manual(0);
        t.set_time_us(50);
        t.recv_wait(20, 5, None);
        let r = t.finish().unwrap();
        let k = r.metrics.kind(CollKind::Other);
        assert_eq!(k.wait_us, 0);
        assert_eq!(k.transfer_us, 30);
    }

    #[test]
    fn wait_at_and_transfer_as_accumulate() {
        let mut t = RankTracer::manual(0);
        t.wait_at(CollKind::ColBcast, 3, 100, 140, Some((1, 4)));
        t.transfer_as(CollKind::ColBcast, 9);
        let r = t.finish().unwrap();
        assert_eq!(r.metrics.kind(CollKind::ColBcast).wait_us, 40);
        assert_eq!(r.metrics.kind(CollKind::ColBcast).transfer_us, 9);
        assert_eq!(
            r.events,
            vec![TraceEvent {
                ts_us: 100,
                kind: EventKind::Wait {
                    coll: CollKind::ColBcast,
                    key: 3,
                    wait_us: 40,
                    transfer_us: 0,
                    cause: Some((1, 4)),
                }
            }]
        );
    }

    #[test]
    fn summary_table_golden_format() {
        // Golden test for the full table shape, including the two
        // unconditional footer lines (stash and outstanding HWM) that must
        // appear on both backends whether or not anything was stashed or in
        // flight.
        let mut a = RankTracer::manual(0);
        a.push_scope(CollKind::ColBcast, 0);
        a.msg_send(1, 0, 100, 1, 0);
        a.set_time_us(10);
        a.pop_scope();
        let mut b = RankTracer::manual(1);
        b.push_scope(CollKind::ColBcast, 0);
        b.msg_send(0, 0, 300, 1, 0);
        b.set_time_us(10);
        b.pop_scope();
        let trace = collect("golden", vec![a, b]).unwrap().with_meta("backend", "unit");
        let expect = "\
trace summary: golden (2 ranks)
run metadata: backend=unit
phase                msgs   sent.min B   sent.max B  sent.mean B   sent.sigma    time µs    wait µs    xfer µs
ColBcast                2          100          300        200.0        100.0         20          0          0
stash high-water: max 0 at rank 0, mean 0.00, 0/2 ranks ever stashed
outstanding collectives high-water: max 0, mean 0.00 across ranks
retransmits: total 0 (0 B control traffic), max 0 at rank 0
pool tasks: executed 0, stolen 0 (0.0%), busy 0 µs, 0 workers/rank
";
        assert_eq!(trace.summary_table(), expect);
    }

    #[test]
    fn summary_footer_lines_are_unconditional() {
        // Even an empty, metadata-free trace prints both HWM footer lines —
        // this is what keeps DES and mpisim summaries shape-compatible.
        let table = Trace::new("empty", vec![]).summary_table();
        assert!(table.contains("stash high-water:"), "{table}");
        assert!(table.contains("outstanding collectives high-water:"), "{table}");
        assert!(table.contains("retransmits: total 0"), "{table}");
        assert!(table.contains("pool tasks: executed 0"), "{table}");
    }

    #[test]
    fn retransmit_hook_counts_control_traffic_only() {
        let mut a = RankTracer::manual(0);
        a.set_time_us(5);
        a.retransmit(1, 7, 64);
        a.retransmit(1, 7, 64);
        let mut b = RankTracer::manual(1);
        b.retransmit(0, 7, 24);
        let trace = collect("retrans", vec![a, b]).unwrap();
        // Control-plane counters move; the logical volumes never do.
        assert_eq!(trace.ranks[0].metrics.retransmits, 2);
        assert_eq!(trace.ranks[0].metrics.retrans_bytes, 128);
        assert_eq!(trace.ranks[0].metrics.total_sent_bytes(), 0);
        assert_eq!(trace.ranks[0].metrics.total_sent_msgs(), 0);
        // Each retransmission emits a fault instant plus a counter sample.
        let faults = trace.ranks[0]
            .events
            .iter()
            .filter(|e| {
                matches!(e.kind, EventKind::Fault { what: FaultKind::Retransmit, peer: 1, tag: 7 })
            })
            .count();
        assert_eq!(faults, 2);
        let counters: Vec<u64> = trace.ranks[0]
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Retransmits { count } => Some(count),
                _ => None,
            })
            .collect();
        assert_eq!(counters, vec![1, 2]);
        let table = trace.summary_table();
        assert!(
            table.contains("retransmits: total 3 (152 B control traffic), max 2 at rank 0"),
            "{table}"
        );
        // Disabled tracer: no-op.
        let mut d = RankTracer::disabled();
        d.retransmit(0, 0, 8);
        assert!(d.finish().is_none());
    }

    #[test]
    fn meta_roundtrip_and_override() {
        let trace = Trace::new("m", vec![])
            .with_meta("scheme", "ShiftedBinary")
            .with_meta("grid", "3x3")
            .with_meta("scheme", "Binary");
        assert_eq!(trace.meta_str("scheme"), Some("Binary"));
        assert_eq!(trace.meta_str("grid"), Some("3x3"));
        assert_eq!(trace.meta_str("seed"), None);
        assert_eq!(trace.meta.len(), 2);
        let table = trace.summary_table();
        assert!(table.contains("scheme=Binary"), "{table}");
    }

    #[test]
    fn summary_reports_stash_distribution() {
        let mut a = RankTracer::manual(0);
        a.stash_depth(1);
        let mut b = RankTracer::manual(1);
        b.stash_depth(4);
        b.stash_depth(0);
        let trace = collect("stash", vec![a, b]).unwrap();
        let table = trace.summary_table();
        assert!(table.contains("max 4 at rank 1"), "{table}");
        assert!(table.contains("mean 2.50"), "{table}");
        assert!(table.contains("2/2 ranks ever stashed"), "{table}");
    }

    #[test]
    fn fault_events_and_tail() {
        let mut t = RankTracer::manual(2);
        t.set_time_us(7);
        t.fault(FaultKind::Delayed, 5, 42);
        t.msg_send(5, 42, 16, 1, 1);
        let tail = t.tail(10);
        assert_eq!(tail.len(), 2);
        assert!(tail[0].contains("fault delayed peer=5 tag=42"), "{tail:?}");
        assert!(tail[1].contains("send -> 5"), "{tail:?}");
        // tail(n) truncates to the newest n.
        assert_eq!(t.tail(1).len(), 1);
        assert!(t.tail(1)[0].contains("send"), "{:?}", t.tail(1));
        // Faults are events only — no metrics impact.
        let r = t.finish().unwrap();
        assert_eq!(r.metrics.kind(CollKind::Other).msgs_recv, 0);
        assert!(r.events.iter().any(|e| matches!(
            e.kind,
            EventKind::Fault { what: FaultKind::Delayed, peer: 5, tag: 42 }
        )));
        // Disabled tracer: no-op, empty tail.
        let mut d = RankTracer::disabled();
        d.fault(FaultKind::Crashed, 0, 0);
        assert!(d.tail(5).is_empty());
    }

    #[test]
    fn finish_closes_open_scopes() {
        let mut t = RankTracer::manual(0);
        t.set_time_us(5);
        t.push_scope(CollKind::Compute, 1);
        t.set_time_us(9);
        let r = t.finish().unwrap();
        assert_eq!(r.metrics.kind(CollKind::Compute).spans, 1);
        assert_eq!(r.metrics.kind(CollKind::Compute).span_time_us, 4);
    }
}
