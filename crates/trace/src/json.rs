//! A minimal JSON value: ordered objects, a writer and a parser.
//!
//! Used by the Chrome trace exporter and by `pselinv-bench`'s figure
//! artifacts (the build environment has no `serde`). Numbers are `f64`;
//! object key order is preserved so artifacts diff cleanly across runs.

use std::fmt::{self, Write as _};

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with preserved key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on arrays.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(v) => v.get(i),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Pretty serialization (two-space indent).
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or("unterminated string")?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our artifacts.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                c => {
                    // Collect the full UTF-8 sequence starting at c.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let end = (start + width).min(self.bytes.len());
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid UTF-8 in string")?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            out.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj([
            ("name", "col_bcast \"x\"\n".into()),
            ("ts", 1.5.into()),
            ("n", 42u64.into()),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj([("k", Json::Arr(vec![]))])),
        ]);
        for s in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&s).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn parses_scientific_and_negative_numbers() {
        let v = Json::parse("[-1.5e-3, 2E4, 0, -7]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_f64().unwrap(), -1.5e-3);
        assert_eq!(a[1].as_f64().unwrap(), 2e4);
        assert_eq!(a[3].as_f64().unwrap(), -7.0);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(3.25).to_string_compact(), "3.25");
    }

    #[test]
    fn object_accessors() {
        let v = Json::parse(r#"{"a": [1, {"b": 2.5}], "c": "s"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().idx(1).unwrap().get("b").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("c").unwrap().as_str(), Some("s"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{,}").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("[] trailing").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::Str("σ — µs".to_string());
        assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
    }
}
