//! Quickstart: compute selected elements of A⁻¹ for a sparse SPD matrix.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pselinv::factor::factorize;
use pselinv::order::{analyze, AnalyzeOptions, OrderingChoice};
use pselinv::selinv::selinv_ldlt;
use pselinv::sparse::gen;
use std::sync::Arc;

fn main() {
    // 1. A workload: the 2-D Laplacian on a 30×30 grid (n = 900).
    let w = gen::grid_laplacian_2d(30, 30);
    println!("matrix: {} ({} rows, {} nonzeros)", w.name, w.matrix.nrows(), w.matrix.nnz());

    // 2. Symbolic analysis: fill-reducing ordering (geometric nested
    //    dissection, since the workload carries its grid geometry),
    //    elimination tree, supernodes, factor structure.
    let opts = AnalyzeOptions {
        ordering: OrderingChoice::NestedDissection(w.geometry, Default::default()),
        ..Default::default()
    };
    let symbolic = Arc::new(analyze(&w.matrix.pattern(), &opts));
    println!(
        "analysis: {} supernodes, nnz(L) = {} ({:.2}x fill over A)",
        symbolic.num_supernodes(),
        symbolic.nnz_factor(),
        symbolic.nnz_factor() as f64 / (w.matrix.nnz() as f64 / 2.0)
    );

    // 3. Numeric supernodal LDLᵀ factorization.
    let factor = factorize(&w.matrix, symbolic).expect("matrix is SPD");

    // 4. Selected inversion: every A⁻¹ entry on the sparsity pattern of A
    //    (plus fill) — without ever forming the dense inverse.
    let inv = selinv_ldlt(&factor);

    // 5. Read results: the diagonal of A⁻¹ and arbitrary selected entries.
    let diag = inv.diagonal();
    println!("trace(A⁻¹)      = {:.6}", inv.trace());
    println!("A⁻¹[0,0]        = {:.6}", diag[0]);
    println!("A⁻¹[450,450]    = {:.6}", diag[450]);
    // entries on the pattern of A are always available:
    let (i, j) = (31, 1); // a grid neighbor pair
    println!("A⁻¹[{i},{j}]      = {:.6}", inv.get(i, j).unwrap());
    // entries outside the selected set are not computed:
    assert!(inv.get(0, 899).is_none(), "far-apart entry is not selected");
    println!("A⁻¹[0,899]      = <not in the selected set>");
}
