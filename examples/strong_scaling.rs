//! Strong-scaling preview: replay the PSelInv task graph on the simulated
//! machine at increasing processor counts and compare tree schemes — a
//! small version of the paper's Fig. 8 (the full version is
//! `cargo run --release -p pselinv-bench --bin figures -- fig8a fig8b`).
//!
//! ```text
//! cargo run --release --example strong_scaling
//! ```

use pselinv::des::{simulate, MachineConfig};
use pselinv::dist::taskgraph::{selinv_graph, GraphOptions};
use pselinv::dist::Layout;
use pselinv::mpisim::Grid2D;
use pselinv::order::{analyze, AnalyzeOptions, OrderingChoice};
use pselinv::sparse::gen;
use pselinv::trees::TreeScheme;
use std::sync::Arc;

fn main() {
    let w = gen::fem_3d(14, 14, 14, 3, 99);
    let opts = AnalyzeOptions {
        ordering: OrderingChoice::NestedDissection(w.geometry, Default::default()),
        supernode: pselinv::order::supernodes::SupernodeOptions {
            max_width: 32,
            relax_small: 8,
            relax_zero_fraction: 0.3,
        },
        track_true_structure: false,
    };
    let symbolic = Arc::new(analyze(&w.matrix.pattern(), &opts));
    println!(
        "workload {}: n = {}, {} supernodes",
        w.name,
        w.matrix.nrows(),
        symbolic.num_supernodes()
    );

    let machine = |seed| MachineConfig {
        ranks_per_node: 24,
        flops_per_sec: 2e9,
        bw_inter: 0.5e9,
        bw_intra: 4e9,
        node_bw_factor: 1.0,
        seed,
        ..Default::default()
    };

    println!(
        "\n{:>6} {:>14} {:>14} {:>14}  (simulated seconds, 3 runs each)",
        "P", "Flat", "Binary", "Shifted"
    );
    for p in [64usize, 256, 1024, 2116] {
        let layout = Layout::new(symbolic.clone(), Grid2D::square_for(p));
        let mut row = format!("{p:>6}");
        for scheme in [TreeScheme::Flat, TreeScheme::Binary, TreeScheme::ShiftedBinary] {
            let g = selinv_graph(&layout, &GraphOptions { scheme, seed: 7, pipelining: true });
            let mean: f64 = (0..3).map(|s| simulate(&g, machine(s)).makespan).sum::<f64>() / 3.0;
            row.push_str(&format!(" {mean:>13.4}s"));
        }
        println!("{row}");
    }
    println!("\n(relative times matter; the machine model is a scaled-down Cray XC30)");
}
