//! End-to-end tracing demo: run the numeric selected inversion of a small
//! FEM problem on the mpisim backend *and* replay its task graph on the
//! discrete-event simulator, under Flat vs Shifted Binary trees, with the
//! unified trace layer recording both. Writes one Chrome trace-event JSON
//! per (backend, scheme) — load them in `chrome://tracing` or Perfetto —
//! and prints the per-rank Table-I style summaries.
//!
//! ```text
//! cargo run --release --example trace_run [-- OUT_DIR]
//! ```

use pselinv::des::{simulate_profiled, MachineConfig};
use pselinv::dist::taskgraph::{selinv_graph, GraphOptions};
use pselinv::dist::{
    distributed_selinv_traced, replay_volumes, try_distributed_selinv_traced, DistOptions, Layout,
};
use pselinv::mpisim::{Grid2D, RunOptions, Telemetry};
use pselinv::order::{analyze, AnalyzeOptions};
use pselinv::profile::{CausalChains, CriticalPath, HotspotReport, WaitReport};
use pselinv::sparse::gen;
use pselinv::trace::chrome::{to_chrome, validate_chrome};
use pselinv::trace::{CollKind, Trace};
use pselinv::trees::{TreeBuilder, TreeScheme};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const TREE_SEED: u64 = 0x5e11;

fn write_trace(dir: &Path, name: &str, trace: &Trace) {
    let chrome = to_chrome(trace);
    let n = validate_chrome(&chrome).expect("exported trace must be valid Chrome JSON");
    let path = dir.join(format!("{name}.trace.json"));
    std::fs::write(&path, chrome.to_string_compact()).expect("cannot write trace file");
    println!("  wrote {} ({n} events)", path.display());
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "target/traces".to_string());
    let out_dir = Path::new(&out_dir);
    std::fs::create_dir_all(out_dir).expect("cannot create output directory");

    // A small FEM workload: large enough to exercise every phase, small
    // enough that the real numeric run finishes in seconds.
    let w = gen::fem_3d(6, 6, 6, 1, 0x7ace);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    let f = pselinv::factor::factorize(&w.matrix, sf.clone()).expect("factorization failed");
    let grid = Grid2D::new(3, 3);
    println!(
        "workload {}: n = {}, {} supernodes, {} ranks ({}x{} grid)\n",
        w.name,
        w.matrix.nrows(),
        sf.num_supernodes(),
        grid.size(),
        grid.pr,
        grid.pc
    );

    for (slug, scheme) in [("flat", TreeScheme::Flat), ("shifted", TreeScheme::ShiftedBinary)] {
        println!("=== {scheme} ===");
        let layout = Layout::new(sf.clone(), grid);
        let rep = replay_volumes(&layout, TreeBuilder::new(scheme, TREE_SEED));

        // Backend 1: thread-per-rank mpisim, wall-clock trace.
        let opts =
            DistOptions { scheme, seed: TREE_SEED, threads: 1, lookahead: 1, ..Default::default() };
        let (_, _, trace) = distributed_selinv_traced(&f, grid, &opts, &format!("mpisim/{slug}"));
        assert_eq!(
            trace.sent_bytes(CollKind::ColBcast),
            rep.col_bcast_sent,
            "traced Col-Bcast bytes must match the structural replay"
        );
        println!("{}", trace.summary_table());
        write_trace(out_dir, &format!("mpisim_{slug}"), &trace);

        // Backend 2: discrete-event simulator, simulated-time trace of the
        // same algorithm's task graph, plus the schedule profile for
        // critical-path extraction.
        let gopts = GraphOptions { scheme, seed: TREE_SEED, pipelining: true };
        let g = selinv_graph(&layout, &gopts);
        let meta = [("scheme", scheme.to_string()), ("grid", format!("{}x{}", grid.pr, grid.pc))];
        let (res, des_trace, prof) =
            simulate_profiled(&g, MachineConfig::default(), &format!("des/{slug}"), &meta);
        assert_eq!(
            des_trace.sent_bytes(CollKind::ColBcast),
            rep.col_bcast_sent,
            "DES Col-Bcast bytes must match the structural replay"
        );
        println!(
            "DES replay: makespan {:.4}s, {} messages, {} bytes",
            res.makespan, res.messages, res.bytes
        );
        println!("{}", des_trace.summary_table());
        write_trace(out_dir, &format!("des_{slug}"), &des_trace);

        // Analysis layer: where the bytes concentrate, where ranks wait,
        // and which chain of tasks/transfers bounds the makespan.
        let hotspots = HotspotReport::from_trace(&des_trace, (grid.pr, grid.pc));
        print!("{}", hotspots.ascii());
        let waits = WaitReport::from_trace(&des_trace);
        if let Some(kind) = waits.dominant_wait_kind() {
            println!("dominant wait state: {}", kind.name());
        }
        let cp = CriticalPath::extract(&g, &prof);
        print!("{}", cp.ascii());
        let cp_path = out_dir.join(format!("des_{slug}.critpath.json"));
        std::fs::write(&cp_path, cp.json().to_string_pretty())
            .expect("cannot write critical-path file");
        println!("  wrote {}\n", cp_path.display());
    }

    // Backend 3: the asynchronous pipelined engine (nonblocking tree
    // collectives, lookahead window) with live telemetry attached: a
    // sampler thread snapshots per-rank gauges (blocked-on state, inbox
    // depth, stash size, outstanding collectives, byte counters) into a
    // ring buffer while the run executes, and the causal layer
    // reconstructs happens-before from the Lamport stamps afterwards.
    println!("=== async engine (lookahead = 4) with live telemetry ===");
    let telemetry = Telemetry::new(Duration::from_micros(500), 8192);
    let run_opts = RunOptions { telemetry: Some(telemetry.clone()), ..RunOptions::default() };
    let opts = DistOptions {
        scheme: TreeScheme::ShiftedBinary,
        seed: TREE_SEED,
        threads: 1,
        lookahead: 4,
        ..Default::default()
    };
    let (_, _, trace) =
        try_distributed_selinv_traced(&f, grid, &opts, &run_opts, "mpisim/async+telemetry")
            .expect("async traced run failed");
    println!("{}", trace.summary_table());
    write_trace(out_dir, "mpisim_async", &trace);

    let samples = telemetry.samples();
    let jsonl_path = out_dir.join("telemetry.jsonl");
    std::fs::write(&jsonl_path, telemetry.to_jsonl()).expect("cannot write telemetry JSONL");
    println!("  wrote {} ({} samples)", jsonl_path.display(), samples.len());
    let prom_path = out_dir.join("telemetry.prom");
    std::fs::write(&prom_path, telemetry.prometheus()).expect("cannot write Prometheus text");
    println!("  wrote {} (final gauge values)", prom_path.display());

    let causal = CausalChains::from_trace(&trace);
    assert!(causal.is_valid(), "causal violations: {:?}", causal.violations());
    print!("{}", causal.ascii(3));
    let causal_path = out_dir.join("mpisim_async.causal.json");
    std::fs::write(&causal_path, causal.json(10).to_string_pretty())
        .expect("cannot write causal-chain file");
    println!("  wrote {}", causal_path.display());
}
