//! End-to-end tracing demo: run the numeric selected inversion of a small
//! FEM problem on the mpisim backend *and* replay its task graph on the
//! discrete-event simulator, under Flat vs Shifted Binary trees, with the
//! unified trace layer recording both. Writes one Chrome trace-event JSON
//! per (backend, scheme) — load them in `chrome://tracing` or Perfetto —
//! and prints the per-rank Table-I style summaries.
//!
//! ```text
//! cargo run --release --example trace_run [-- OUT_DIR]
//! ```

use pselinv::des::{simulate_traced, MachineConfig};
use pselinv::dist::taskgraph::{selinv_graph, GraphOptions};
use pselinv::dist::{distributed_selinv_traced, replay_volumes, DistOptions, Layout};
use pselinv::mpisim::Grid2D;
use pselinv::order::{analyze, AnalyzeOptions};
use pselinv::sparse::gen;
use pselinv::trace::chrome::{to_chrome, validate_chrome};
use pselinv::trace::{CollKind, Trace};
use pselinv::trees::{TreeBuilder, TreeScheme};
use std::path::Path;
use std::sync::Arc;

const TREE_SEED: u64 = 0x5e11;

fn write_trace(dir: &Path, name: &str, trace: &Trace) {
    let chrome = to_chrome(trace);
    let n = validate_chrome(&chrome).expect("exported trace must be valid Chrome JSON");
    let path = dir.join(format!("{name}.trace.json"));
    std::fs::write(&path, chrome.to_string_compact()).expect("cannot write trace file");
    println!("  wrote {} ({n} events)", path.display());
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "target/traces".to_string());
    let out_dir = Path::new(&out_dir);
    std::fs::create_dir_all(out_dir).expect("cannot create output directory");

    // A small FEM workload: large enough to exercise every phase, small
    // enough that the real numeric run finishes in seconds.
    let w = gen::fem_3d(6, 6, 6, 1, 0x7ace);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    let f = pselinv::factor::factorize(&w.matrix, sf.clone()).expect("factorization failed");
    let grid = Grid2D::new(3, 3);
    println!(
        "workload {}: n = {}, {} supernodes, {} ranks ({}x{} grid)\n",
        w.name,
        w.matrix.nrows(),
        sf.num_supernodes(),
        grid.size(),
        grid.pr,
        grid.pc
    );

    for (slug, scheme) in [("flat", TreeScheme::Flat), ("shifted", TreeScheme::ShiftedBinary)] {
        println!("=== {scheme} ===");
        let layout = Layout::new(sf.clone(), grid);
        let rep = replay_volumes(&layout, TreeBuilder::new(scheme, TREE_SEED));

        // Backend 1: thread-per-rank mpisim, wall-clock trace.
        let opts = DistOptions { scheme, seed: TREE_SEED };
        let (_, _, trace) = distributed_selinv_traced(&f, grid, &opts, &format!("mpisim/{slug}"));
        assert_eq!(
            trace.sent_bytes(CollKind::ColBcast),
            rep.col_bcast_sent,
            "traced Col-Bcast bytes must match the structural replay"
        );
        println!("{}", trace.summary_table());
        write_trace(out_dir, &format!("mpisim_{slug}"), &trace);

        // Backend 2: discrete-event simulator, simulated-time trace of the
        // same algorithm's task graph.
        let gopts = GraphOptions { scheme, seed: TREE_SEED, pipelining: true };
        let g = selinv_graph(&layout, &gopts);
        let (res, des_trace) =
            simulate_traced(&g, MachineConfig::default(), &format!("des/{slug}"));
        assert_eq!(
            des_trace.sent_bytes(CollKind::ColBcast),
            rep.col_bcast_sent,
            "DES Col-Bcast bytes must match the structural replay"
        );
        println!(
            "DES replay: makespan {:.4}s, {} messages, {} bytes",
            res.makespan, res.messages, res.bytes
        );
        println!("{}", des_trace.summary_table());
        write_trace(out_dir, &format!("des_{slug}"), &des_trace);
        println!();
    }
}
