//! PEXSI-style electronic structure workload: extract the diagonal of the
//! inverse of a discontinuous-Galerkin Kohn–Sham Hamiltonian — the
//! application driving the paper (density matrix evaluation without
//! diagonalization).
//!
//! ```text
//! cargo run --release --example electronic_structure
//! ```

use pselinv::dist::{distributed_selinv, DistOptions};
use pselinv::factor::factorize;
use pselinv::mpisim::Grid2D;
use pselinv::order::{analyze, AnalyzeOptions, OrderingChoice};
use pselinv::selinv::selinv_ldlt;
use pselinv::sparse::gen;
use pselinv::trees::TreeScheme;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A 2-D "nanoflake": 6×6 DG elements with 12 basis functions each
    // (a scaled-down DG_PNF14000), shifted to be SPD — physically, the
    // shifted Hamiltonian H - zS at one pole of the PEXSI expansion.
    let w = gen::dg_hamiltonian(6, 6, 1, 12, 0xd6f);
    let n = w.matrix.nrows();
    println!(
        "DG Hamiltonian: n = {n}, nnz = {} ({:.2}%)",
        w.matrix.nnz(),
        100.0 * w.matrix.nnz() as f64 / (n * n) as f64
    );

    let opts = AnalyzeOptions {
        ordering: OrderingChoice::NestedDissection(
            w.geometry,
            pselinv::order::nd::NdOptions { leaf_size: 1 },
        ),
        ..Default::default()
    };
    let symbolic = Arc::new(analyze(&w.matrix.pattern(), &opts));
    let factor = factorize(&w.matrix, symbolic).expect("shifted Hamiltonian is definite");

    // Sequential selected inversion.
    let t0 = Instant::now();
    let inv = selinv_ldlt(&factor);
    let seq_time = t0.elapsed();

    // "Electron density per element": sum of A⁻¹ diagonal entries over
    // each element's basis functions.
    let diag = inv.diagonal();
    let per_element: Vec<f64> = diag.chunks(12).map(|c| c.iter().sum::<f64>()).collect();
    println!("trace(A⁻¹) = {:.6} (sequential, {:?})", inv.trace(), seq_time);
    println!(
        "per-element density (corner, edge, center): {:.4}, {:.4}, {:.4}",
        per_element[0],
        per_element[1],
        per_element[2 * 6 + 2]
    );

    // The same computation on the distributed algorithm: 6 rank-threads on
    // a 2×3 process grid, restricted collectives routed by shifted binary
    // trees — the paper's algorithm end to end.
    let t0 = Instant::now();
    let (dinv, volumes) = distributed_selinv(
        &factor,
        Grid2D::new(2, 3),
        &DistOptions {
            scheme: TreeScheme::ShiftedBinary,
            seed: 42,
            threads: 1,
            lookahead: 1,
            ..Default::default()
        },
    );
    let dist_time = t0.elapsed();
    println!("trace(A⁻¹) = {:.6} (distributed 2x3, {:?})", dinv.trace(), dist_time);
    assert!((dinv.trace() - inv.trace()).abs() < 1e-8 * inv.trace().abs());

    println!("per-rank communication volume (sent):");
    for (r, v) in volumes.iter().enumerate() {
        println!("  rank {r}: {:>9} B in {:>4} messages", v.sent, v.msgs_sent);
    }
}
