//! Communication load-balance study (the paper's Table I / Fig. 5 analysis
//! on a custom workload): replay the Col-Bcast and Row-Reduce volumes of a
//! full selected inversion on a 46×46 process grid and compare tree
//! schemes — no numerics, structure only, so it runs in seconds.
//!
//! ```text
//! cargo run --release --example comm_volume_study
//! ```

use pselinv::dist::{replay_volumes, Layout};
use pselinv::mpisim::Grid2D;
use pselinv::order::{analyze, AnalyzeOptions, OrderingChoice};
use pselinv::sparse::gen;
use pselinv::trees::{TreeBuilder, TreeScheme};
use std::sync::Arc;

fn main() {
    let w = gen::fem_3d(16, 16, 16, 3, 1234);
    let opts = AnalyzeOptions {
        ordering: OrderingChoice::NestedDissection(w.geometry, Default::default()),
        // fine supernodes: enough concurrent collectives to load a 46×46 grid
        supernode: pselinv::order::supernodes::SupernodeOptions {
            max_width: 24,
            relax_small: 6,
            relax_zero_fraction: 0.3,
        },
        track_true_structure: false, // structure study only
    };
    let symbolic = Arc::new(analyze(&w.matrix.pattern(), &opts));
    println!(
        "workload {}: n = {}, {} supernodes, nnz(L) = {}",
        w.name,
        w.matrix.nrows(),
        symbolic.num_supernodes(),
        symbolic.nnz_factor()
    );

    let grid = Grid2D::new(46, 46);
    let layout = Layout::new(symbolic, grid);
    println!("\nCol-Bcast volume sent per rank (MB), {}x{} grid:", grid.pr, grid.pc);
    println!("{:<24} {:>9} {:>9} {:>9} {:>9}", "scheme", "min", "max", "median", "std dev");
    for scheme in [
        TreeScheme::Flat,
        TreeScheme::Binary,
        TreeScheme::ShiftedBinary,
        TreeScheme::RandomPerm,
        TreeScheme::Hybrid { flat_threshold: 8 },
    ] {
        let rep = replay_volumes(&layout, TreeBuilder::new(scheme, 42));
        let s = rep.col_bcast_stats_mb();
        println!(
            "{:<24} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            scheme.to_string(),
            s.min,
            s.max,
            s.median,
            s.std_dev
        );
    }

    // The heat map rows of Fig. 5 for the shifted scheme (coarse preview).
    let rep = replay_volumes(&layout, TreeBuilder::new(TreeScheme::ShiftedBinary, 42));
    let hm = rep.col_bcast_heatmap_mb();
    let max = hm.iter().flatten().cloned().fold(0.0f64, f64::max).max(1e-12);
    println!("\nShifted Binary-Tree heat map (one char per rank, 0-9 scaled):");
    for row in hm.iter().step_by(2) {
        let line: String = row
            .iter()
            .step_by(2)
            .map(|v| char::from_digit(((v / max) * 9.0).round() as u32, 10).unwrap_or('9'))
            .collect();
        println!("  {line}");
    }
}
