//! # pselinv-rs
//!
//! A Rust reproduction of *“Enhancing Scalability and Load Balancing of
//! Parallel Selected Inversion via Tree-Based Asynchronous Communication”*
//! (Jacquelin, Yang, Lin, Wichmann — IPDPS 2016).
//!
//! This facade crate re-exports every layer of the workspace:
//!
//! * [`sparse`] — CSC matrices, workload generators, Matrix Market I/O;
//! * [`order`] — fill-reducing orderings, elimination trees, supernodal
//!   symbolic factorization;
//! * [`dense`] — dense block kernels (GEMM/TRSM/LDLᵀ/LU);
//! * [`factor`] — sequential supernodal numeric factorization;
//! * [`selinv`] — sequential selected inversion (the reference algorithm);
//! * [`trees`] — the paper's contribution: flat / binary / shifted-binary
//!   restricted-collective communication trees;
//! * [`mpisim`] — a thread-based asynchronous message-passing runtime
//!   standing in for MPI;
//! * [`dist`] — distributed-memory PSelInv: block-cyclic layout,
//!   communication plans, numeric execution and volume accounting;
//! * [`des`] — a discrete-event machine simulator used to replay PSelInv
//!   task graphs at the paper's scales (up to 12,100 ranks);
//! * [`trace`] — the shared event/metrics layer: per-phase spans, message
//!   events and per-rank byte statistics for both backends, exported as
//!   Chrome trace-event JSON or a Table-I style summary;
//! * [`profile`] — analysis on top of the trace layer: per-rank hot-spot
//!   heat maps with imbalance ratios, Scalasca-style wait-state
//!   classification, and critical-path extraction from DES schedules;
//! * [`chaos`] — deterministic, seed-driven fault plans (delay, jitter,
//!   reordering, duplication, slowdown, stall, crash) consumed by both
//!   backends for resilience testing.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment map.

pub use pselinv_chaos as chaos;
pub use pselinv_dense as dense;
pub use pselinv_des as des;
pub use pselinv_dist as dist;
pub use pselinv_factor as factor;
pub use pselinv_mpisim as mpisim;
pub use pselinv_order as order;
pub use pselinv_profile as profile;
pub use pselinv_selinv as selinv;
pub use pselinv_sparse as sparse;
pub use pselinv_trace as trace;
pub use pselinv_trees as trees;
