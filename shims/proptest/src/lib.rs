//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the `proptest!` macro over
//! named range/collection/tuple strategies, `prop_assert!`/`prop_assert_eq!`
//! and `ProptestConfig::with_cases`. Cases are generated from a
//! deterministic per-test seed (override with `PROPTEST_SEED=<u64>`);
//! failures print the generated inputs before propagating the panic.
//! Shrinking is not implemented — the printed inputs are the raw case.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing a `Vec` whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() { 0 } else { rng.random_range(self.len.clone()) };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing a `BTreeSet` whose size is drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = if self.size.is_empty() { 0 } else { rng.random_range(self.size.clone()) };
            let mut out = BTreeSet::new();
            // Collisions shrink the set below the target; bound the retries
            // so tiny element domains cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < n && attempts < 64 * n + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test RNG; `PROPTEST_SEED` perturbs every test's stream.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.parse::<u64>() {
            h ^= seed;
        }
    }
    StdRng::seed_from_u64(h)
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The `proptest!` block macro: each contained test runs `cases` generated
/// inputs; a failing case reports the inputs that produced it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || { $body }
                ));
                if let Err(e) = result {
                    eprintln!(
                        "proptest case {}/{} of {} failed with inputs: {}",
                        case + 1, cfg.cases, stringify!($name), inputs
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_inside_bounds(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec((0usize..5, 0.0f64..1.0), 0..7),
            s in crate::collection::btree_set(0usize..100, 1..10),
        ) {
            prop_assert!(v.len() < 7);
            prop_assert!(!s.is_empty() && s.len() < 10);
        }
    }

    #[test]
    fn deterministic_without_env_seed() {
        if std::env::var("PROPTEST_SEED").is_err() {
            let mut a = crate::test_rng("t");
            let mut b = crate::test_rng("t");
            use rand::Rng;
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
