//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::Range;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng), self.3.generate(rng))
    }
}

/// Strategy that always yields clones of one value (`proptest::strategy::Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
