//! Offline stand-in for the `criterion` crate.
//!
//! Provides the measurement subset the workspace's benches use:
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`, and `Bencher::
//! iter`. Each benchmark is calibrated so one sample takes a few
//! milliseconds, then `sample_size` samples are timed and min / median /
//! mean per-iteration times are printed. There is no statistical regression
//! machinery — output is a plain table, suitable for eyeballing and for
//! diffing across runs. Honors `CRITERION_QUICK=1` to cut sample counts
//! (useful in CI smoke runs).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>` id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// The timing driver handed to `Bencher::iter` closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration times (seconds), one entry per sample.
    results: Vec<f64>,
}

impl Bencher {
    /// Times `f` repeatedly: calibrates an iteration count so one sample
    /// lasts ≥ ~2 ms, then records `samples` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        // Measure.
        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.results.push(t0.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run_one(&mut self, id: &str, run: impl FnOnce(&mut Bencher)) {
        let quick = std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false);
        let samples = if quick { 2 } else { self.sample_size };
        let mut b = Bencher { samples, results: Vec::new() };
        run(&mut b);
        if b.results.is_empty() {
            println!("{}/{id:<40} (no measurements)", self.name);
            return;
        }
        let mut sorted = b.results.clone();
        sorted.sort_by(|x, y| x.total_cmp(y));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{}/{:<40} min {:>12}   median {:>12}   mean {:>12}",
            self.name,
            id,
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean)
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental; this is a no-op hook).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup { name, sample_size: 10, _parent: self }
    }
}

/// Declares a group-runner function calling each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
