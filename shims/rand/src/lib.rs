//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace ships the
//! small API subset it actually uses: `rngs::StdRng`, `SeedableRng::
//! seed_from_u64` and `Rng::random_range` over half-open ranges. The
//! generator is a splitmix64 stream — statistically solid for test-data
//! generation, deterministic across platforms, and dependency-free. It is
//! NOT the crates.io `StdRng` (ChaCha12): seeds produce different streams.

use std::ops::Range;

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a half-open range, for the primitive types the
/// workspace draws.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty sample range");
        // 53 random mantissa bits -> uniform in [0, 1)
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_uniform(rng, lo as f64, hi as f64) as f32
    }
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range (`rand` 0.9 spelling).
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_uniform(self, range.start, range.end)
    }

    /// Uniform draw from a half-open range (`rand` 0.8 spelling).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        self.random_range(range)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random(&mut self) -> f64 {
        self.random_range(0.0..1.0)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random() < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): passes BigCrush as a stream.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(-0.2..0.2);
            assert!((-0.2..0.2).contains(&v));
            let i = r.random_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn f64_covers_the_range() {
        let mut r = StdRng::seed_from_u64(1);
        let vals: Vec<f64> = (0..1000).map(|_| r.random_range(0.0..1.0)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(vals.iter().any(|&v| v < 0.1));
        assert!(vals.iter().any(|&v| v > 0.9));
    }
}
