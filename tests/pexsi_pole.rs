//! PEXSI-pole scenario: selected inversion of a *shifted* (indefinite)
//! operator `H − σI`. The pole expansion evaluates selected inverses at
//! shifts inside the spectrum, so the LDLᵀ path must handle negative
//! pivots (no pivoting is needed — supernodal LDLᵀ admits any symmetric
//! nonsingular matrix whose leading minors stay nonsingular, which holds
//! for generic shifts).

use pselinv::dense::{lu_factor, lu_invert, Mat};
use pselinv::factor::factorize;
use pselinv::order::{analyze, AnalyzeOptions, OrderingChoice};
use pselinv::selinv::selinv_ldlt;
use pselinv::sparse::{gen, SparseMatrix};
use std::sync::Arc;

fn shifted(h: &SparseMatrix, sigma: f64) -> SparseMatrix {
    h.add_scaled(&SparseMatrix::identity(h.nrows()), 1.0, -sigma)
}

fn dense_inverse(a: &SparseMatrix) -> Mat {
    let n = a.nrows();
    let mut d = Mat::from_col_major(n, n, &a.to_dense_col_major());
    let piv = lu_factor(&mut d).unwrap();
    lu_invert(&d, &piv)
}

#[test]
fn indefinite_shifted_laplacian_selected_inverse() {
    // 2-D Laplacian spectrum lies in (0.01, 8.01); σ = 2 is well inside.
    let w = gen::grid_laplacian_2d(7, 7);
    let a = shifted(&w.matrix, 2.0);
    let opts = AnalyzeOptions {
        ordering: OrderingChoice::NestedDissection(w.geometry, Default::default()),
        ..Default::default()
    };
    let sf = Arc::new(analyze(&a.pattern(), &opts));
    let f = factorize(&a, sf).expect("generic interior shift must factor");

    // the factor must be indefinite: both signs on D
    let d = f.dense_d();
    let n = a.nrows();
    let negatives = (0..n).filter(|&i| d[(i, i)] < 0.0).count();
    assert!(negatives > 0, "shift inside the spectrum must give negative pivots");
    assert!(negatives < n, "and positive ones too");

    let inv = selinv_ldlt(&f);
    let dense = dense_inverse(&a);
    let scale = 1.0 + dense.norm_max();
    for (i, j, _) in a.iter() {
        let v = inv.get(i, j).expect("selected entry");
        assert!(
            (v - dense[(i, j)]).abs() < 1e-8 * scale,
            "A⁻¹({i},{j}) = {v} vs {}",
            dense[(i, j)]
        );
    }
}

#[test]
fn multiple_poles_accumulate_density() {
    // A toy pole sum: Σ_k w_k · diag((H - σ_k)⁻¹); checks several
    // factorizations of differently-shifted operators against dense.
    let w = gen::dg_hamiltonian(3, 3, 1, 4, 21);
    let poles = [(-1.0, 0.4), (1.5, 0.35), (3.0, 0.25)];
    let n = w.matrix.nrows();
    let mut density = vec![0.0f64; n];
    let mut dense_density = vec![0.0f64; n];
    for &(sigma, weight) in &poles {
        let a = shifted(&w.matrix, sigma);
        let sf = Arc::new(analyze(&a.pattern(), &AnalyzeOptions::default()));
        let f = factorize(&a, sf).unwrap();
        let inv = selinv_ldlt(&f);
        let d = inv.diagonal();
        let dd = dense_inverse(&a);
        for i in 0..n {
            density[i] += weight * d[i];
            dense_density[i] += weight * dd[(i, i)];
        }
    }
    for i in 0..n {
        assert!(
            (density[i] - dense_density[i]).abs() < 1e-8 * (1.0 + dense_density[i].abs()),
            "density[{i}]"
        );
    }
}
