//! Property-based tests across crate boundaries.

use proptest::prelude::*;
use pselinv::dense::{lu_factor, lu_invert, Mat};
use pselinv::factor::factorize;
use pselinv::order::{analyze, AnalyzeOptions};
use pselinv::selinv::selinv_ldlt;
use pselinv::sparse::gen;
use pselinv::trees::{bcast_sent_volume, TreeBuilder, TreeScheme};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Selected inversion agrees with the dense inverse on every exposed
    /// entry, for arbitrary random SPD matrices.
    #[test]
    fn selinv_matches_dense(n in 5usize..28, density in 0.05f64..0.5, seed in 0u64..1000) {
        let a = gen::random_spd(n, density, seed);
        let sf = Arc::new(analyze(&a.pattern(), &AnalyzeOptions::default()));
        let f = factorize(&a, sf).unwrap();
        let inv = selinv_ldlt(&f);
        let mut d = Mat::from_col_major(n, n, &a.to_dense_col_major());
        let piv = lu_factor(&mut d).unwrap();
        let dense = lu_invert(&d, &piv);
        let scale = 1.0 + dense.norm_max();
        for i in 0..n {
            for j in 0..n {
                if let Some(v) = inv.get(i, j) {
                    prop_assert!((v - dense[(i, j)]).abs() < 1e-8 * scale,
                        "({i},{j}): {v} vs {}", dense[(i, j)]);
                }
            }
        }
        // diagonal is always selected
        for i in 0..n {
            prop_assert!(inv.get(i, i).is_some());
        }
    }

    /// Every tree scheme yields a valid spanning tree over arbitrary
    /// participant sets: each receiver has one parent, all reachable,
    /// and a broadcast moves exactly (p̄-1) messages.
    #[test]
    fn trees_are_valid_over_random_participants(
        ranks in proptest::collection::btree_set(0usize..512, 1..40),
        root_pick in 0usize..40,
        key in 0u64..100,
        scheme_pick in 0usize..5,
    ) {
        let ranks: Vec<usize> = ranks.iter().copied().collect();
        let root = ranks[root_pick % ranks.len()];
        let receivers: Vec<usize> = ranks.iter().copied().filter(|&r| r != root).collect();
        let scheme = [
            TreeScheme::Flat,
            TreeScheme::Binary,
            TreeScheme::ShiftedBinary,
            TreeScheme::RandomPerm,
            TreeScheme::Hybrid { flat_threshold: 6 },
        ][scheme_pick];
        let tree = TreeBuilder::new(scheme, 99).build(root, &receivers, key);
        prop_assert_eq!(tree.len(), receivers.len() + 1);
        // reachability
        let mut seen = vec![root];
        let mut stack = vec![root];
        while let Some(r) = stack.pop() {
            for c in tree.children_of(r) {
                prop_assert!(!seen.contains(&c));
                seen.push(c);
                stack.push(c);
            }
        }
        prop_assert_eq!(seen.len(), tree.len());
        // message count conservation
        let mut sent = vec![0u64; 512];
        bcast_sent_volume(&tree, 1, &mut sent);
        prop_assert_eq!(sent.iter().sum::<u64>(), receivers.len() as u64);
    }

    /// The factor solve really solves: ‖A x − b‖ small for random SPD A, b.
    #[test]
    fn factor_solve_residual(n in 4usize..40, seed in 0u64..500) {
        let a = gen::random_spd(n, 0.2, seed);
        let sf = Arc::new(analyze(&a.pattern(), &AnalyzeOptions::default()));
        let f = factorize(&a, sf).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let x = f.solve(&b);
        let ax = a.matvec(&x);
        let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1.0);
        for i in 0..n {
            prop_assert!((ax[i] - b[i]).abs() < 1e-9 * bnorm);
        }
    }
}
