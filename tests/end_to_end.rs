//! End-to-end integration: generators → analysis → factorization →
//! selected inversion (sequential and distributed) → verification against
//! the dense inverse.

use pselinv::dense::{lu_factor, lu_invert, Mat};
use pselinv::dist::{distributed_selinv, DistOptions};
use pselinv::factor::factorize;
use pselinv::mpisim::Grid2D;
use pselinv::order::{analyze, AnalyzeOptions, OrderingChoice};
use pselinv::selinv::selinv_ldlt;
use pselinv::sparse::{gen, SparseMatrix};
use pselinv::trees::TreeScheme;
use std::sync::Arc;

fn dense_inverse(a: &SparseMatrix) -> Mat {
    let n = a.nrows();
    let mut d = Mat::from_col_major(n, n, &a.to_dense_col_major());
    let piv = lu_factor(&mut d).unwrap();
    lu_invert(&d, &piv)
}

fn full_pipeline(a: &SparseMatrix, opts: &AnalyzeOptions, grid: Grid2D, scheme: TreeScheme) {
    let sf = Arc::new(analyze(&a.pattern(), opts));
    let f = factorize(a, sf.clone()).unwrap();
    let seq = selinv_ldlt(&f);
    let (dist, volumes) = distributed_selinv(
        &f,
        grid,
        &DistOptions { scheme, seed: 1, threads: 1, lookahead: 1, ..Default::default() },
    );
    let dense = dense_inverse(a);
    let scale = 1.0 + dense.norm_max();

    let n = a.nrows();
    for i in 0..n {
        for j in 0..n {
            match (seq.get(i, j), dist.get(i, j)) {
                (Some(s), Some(d)) => {
                    assert!((s - d).abs() < 1e-9 * scale, "seq/dist mismatch at ({i},{j})");
                    assert!(
                        (s - dense[(i, j)]).abs() < 1e-8 * scale,
                        "selinv wrong at ({i},{j}): {s} vs {}",
                        dense[(i, j)]
                    );
                }
                (None, None) => {}
                other => panic!("selected-set mismatch at ({i},{j}): {other:?}"),
            }
        }
    }
    // distributed run must exchange data on a >1-rank grid when blocks are
    // spread out
    if grid.size() > 1 {
        let total: u64 = volumes.iter().map(|v| v.sent).sum();
        assert!(total > 0, "no communication on a {}x{} grid", grid.pr, grid.pc);
    }
}

#[test]
fn laplacian_2d_nd_shifted() {
    let w = gen::grid_laplacian_2d(9, 9);
    let opts = AnalyzeOptions {
        ordering: OrderingChoice::NestedDissection(w.geometry, Default::default()),
        ..Default::default()
    };
    full_pipeline(&w.matrix, &opts, Grid2D::new(2, 2), TreeScheme::ShiftedBinary);
}

#[test]
fn laplacian_3d_md_flat() {
    let w = gen::grid_laplacian_3d(4, 4, 3);
    full_pipeline(&w.matrix, &AnalyzeOptions::default(), Grid2D::new(3, 2), TreeScheme::Flat);
}

#[test]
fn dg_hamiltonian_binary() {
    let w = gen::dg_hamiltonian(3, 2, 1, 6, 4);
    let opts = AnalyzeOptions {
        ordering: OrderingChoice::NestedDissection(
            w.geometry,
            pselinv::order::nd::NdOptions { leaf_size: 1 },
        ),
        ..Default::default()
    };
    full_pipeline(&w.matrix, &opts, Grid2D::new(2, 3), TreeScheme::Binary);
}

#[test]
fn fem_3d_hybrid() {
    let w = gen::fem_3d(3, 3, 2, 2, 8);
    full_pipeline(
        &w.matrix,
        &AnalyzeOptions::default(),
        Grid2D::new(2, 2),
        TreeScheme::Hybrid { flat_threshold: 3 },
    );
}

#[test]
fn matrix_market_roundtrip_through_pipeline() {
    // Write a generated matrix to Matrix Market, read it back, invert.
    use pselinv::sparse::io;
    let m = gen::random_spd(24, 0.2, 77);
    let mut buf = Vec::new();
    io::write_matrix_market(&mut buf, &m).unwrap();
    let m2 = io::read_matrix_market(&buf[..]).unwrap();
    full_pipeline(&m2, &AnalyzeOptions::default(), Grid2D::new(2, 2), TreeScheme::ShiftedBinary);
}

#[test]
fn solve_and_selinv_are_consistent() {
    // (A⁻¹ b)[i] computed via the factor's solve must match Σ_j A⁻¹[i,j] b[j]
    // on a fully dense column when b is a basis vector and the column is
    // inside the selected set's dense diagonal block.
    let w = gen::grid_laplacian_2d(6, 6);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    let f = factorize(&w.matrix, sf.clone()).unwrap();
    let inv = selinv_ldlt(&f);
    for col in [0usize, 17, 35] {
        let mut e = vec![0.0; 36];
        e[col] = 1.0;
        let x = f.solve(&e);
        // x = A⁻¹ e_col; compare on selected entries
        for i in 0..36 {
            if let Some(v) = inv.get(i, col) {
                assert!((v - x[i]).abs() < 1e-9, "col {col} row {i}: {v} vs {}", x[i]);
            }
        }
    }
}
