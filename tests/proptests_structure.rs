//! Property-based tests of the structural substrates (sparse containers
//! and symbolic analysis invariants).

use proptest::prelude::*;
use pselinv::order::{analyze, AnalyzeOptions};
use pselinv::sparse::{gen, TripletMatrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CSC construction from triplets preserves values (with duplicate
    /// summing) and produces sorted, in-bounds structure.
    #[test]
    fn triplet_to_csc_invariants(
        n in 1usize..30,
        entries in proptest::collection::vec((0usize..30, 0usize..30, -10.0f64..10.0), 0..120),
    ) {
        let mut t = TripletMatrix::new(n, n);
        let mut dense = vec![0.0f64; n * n];
        for &(i, j, v) in &entries {
            let (i, j) = (i % n, j % n);
            t.push(i, j, v);
            dense[j * n + i] += v;
        }
        let m = t.to_csc();
        // invariants
        for j in 0..n {
            let rows = m.col_rows(j);
            for w in rows.windows(2) {
                prop_assert!(w[0] < w[1], "rows not strictly increasing");
            }
            for &i in rows {
                prop_assert!(i < n);
            }
        }
        // values
        for j in 0..n {
            for i in 0..n {
                prop_assert!((m.get(i, j) - dense[j * n + i]).abs() < 1e-12);
            }
        }
        // transpose is an involution preserving values
        let tt = m.transpose().transpose();
        prop_assert_eq!(&m, &tt);
    }

    /// Symmetric permutation is a similarity transform: matvec commutes.
    #[test]
    fn permute_sym_commutes_with_matvec(
        n in 2usize..25,
        density in 0.05f64..0.6,
        seed in 0u64..500,
        swaps in proptest::collection::vec((0usize..25, 0usize..25), 0..20),
    ) {
        let a = gen::random_spd(n, density, seed);
        let mut perm: Vec<usize> = (0..n).collect();
        for &(x, y) in &swaps {
            perm.swap(x % n, y % n);
        }
        let pa = a.permute_sym(&perm);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        // y = A x; permuted: ỹ = PA Pᵀ x̃ with x̃[perm[i]] = x[i]
        let y = a.matvec(&x);
        let mut xt = vec![0.0; n];
        for i in 0..n {
            xt[perm[i]] = x[i];
        }
        let yt = pa.matvec(&xt);
        for i in 0..n {
            prop_assert!((yt[perm[i]] - y[i]).abs() < 1e-12);
        }
    }

    /// Symbolic analysis invariants hold for arbitrary random patterns:
    /// blocks partition rows, ancestors are sorted and above the
    /// supernode, stored nnz is at least the true factor nnz.
    #[test]
    fn analysis_invariants_on_random_matrices(
        n in 4usize..40,
        density in 0.03f64..0.4,
        seed in 0u64..1000,
    ) {
        let a = gen::random_spd(n, density, seed);
        let sf = analyze(&a.pattern(), &AnalyzeOptions::default());
        prop_assert_eq!(sf.n, n);
        let mut cols_covered = 0;
        for s in 0..sf.num_supernodes() {
            cols_covered += sf.width(s);
            let rows = sf.rows_of(s);
            for w in rows.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            if let Some(&r) = rows.first() {
                prop_assert!(r >= sf.end_col(s));
            }
            let mut covered = 0;
            for b in sf.blocks_of(s) {
                prop_assert!(b.sn > s);
                covered += b.nrows();
            }
            prop_assert_eq!(covered, rows.len());
        }
        prop_assert_eq!(cols_covered, n);
        // stored nnz covers at least the strict lower triangle of A
        prop_assert!(2 * sf.nnz_factor() >= a.nnz());
    }
}
