//! Structure-level checks of the paper's qualitative claims, at scales
//! small enough for CI (the full-scale versions are in the `figures`
//! harness and recorded in `EXPERIMENTS.md`).

use pselinv::des::{simulate, MachineConfig};
use pselinv::dist::taskgraph::{selinv_graph, GraphOptions};
use pselinv::dist::{replay_volumes, Layout};
use pselinv::mpisim::Grid2D;
use pselinv::order::{analyze, AnalyzeOptions, OrderingChoice};
use pselinv::sparse::gen;
use pselinv::trees::{TreeBuilder, TreeScheme, VolumeStats};
use std::sync::Arc;

fn workload() -> Layout {
    let w = gen::fem_3d(10, 10, 10, 3, 0xaadc);
    let opts = AnalyzeOptions {
        ordering: OrderingChoice::NestedDissection(
            w.geometry,
            pselinv::order::nd::NdOptions { leaf_size: 4 },
        ),
        supernode: pselinv::order::supernodes::SupernodeOptions {
            max_width: 16,
            relax_small: 4,
            relax_zero_fraction: 0.3,
        },
        track_true_structure: false,
    };
    let sf = Arc::new(analyze(&w.matrix.pattern(), &opts));
    Layout::new(sf, Grid2D::new(16, 16))
}

fn stats(layout: &Layout, scheme: TreeScheme) -> VolumeStats {
    replay_volumes(layout, TreeBuilder::new(scheme, 7)).col_bcast_stats_mb()
}

/// Table I's qualitative pattern: the shifted binary tree tightens the
/// per-rank volume distribution relative to both flat and plain binary.
#[test]
fn shifted_tree_balances_col_bcast_volume() {
    let layout = workload();
    let flat = stats(&layout, TreeScheme::Flat);
    let binary = stats(&layout, TreeScheme::Binary);
    let shifted = stats(&layout, TreeScheme::ShiftedBinary);
    assert!(
        shifted.std_dev < flat.std_dev,
        "shifted σ {} !< flat σ {}",
        shifted.std_dev,
        flat.std_dev
    );
    assert!(shifted.std_dev < binary.std_dev);
    assert!(shifted.max < flat.max, "shifted max {} !< flat max {}", shifted.max, flat.max);
    assert!(binary.max > flat.max, "binary striping should raise the max");
}

/// §III: total volume is routing-invariant — trees redistribute load, they
/// do not change how much data must move.
#[test]
fn total_volume_is_scheme_invariant() {
    let layout = workload();
    let totals: Vec<u64> = [TreeScheme::Flat, TreeScheme::Binary, TreeScheme::ShiftedBinary]
        .iter()
        .map(|&s| {
            let rep = replay_volumes(&layout, TreeBuilder::new(s, 7));
            rep.col_bcast_sent.iter().sum::<u64>() + rep.row_reduce_received.iter().sum::<u64>()
        })
        .collect();
    assert_eq!(totals[0], totals[1]);
    assert_eq!(totals[0], totals[2]);
}

/// Fig. 8's variability claim: the run-to-run spread (different placements
/// and link jitter) of the shifted scheme is no worse than flat's at scale.
#[test]
fn shifted_reduces_run_to_run_variation() {
    let layout = workload();
    let spread = |scheme| {
        let g = selinv_graph(&layout, &GraphOptions { scheme, seed: 7, pipelining: true });
        let times: Vec<f64> = (0..4)
            .map(|s| {
                simulate(
                    &g,
                    MachineConfig {
                        ranks_per_node: 24,
                        flops_per_sec: 2e9,
                        bw_inter: 0.5e9,
                        bw_intra: 4e9,
                        node_bw_factor: 1.0,
                        seed: s,
                        ..Default::default()
                    },
                )
                .makespan
            })
            .collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
        (var.sqrt(), mean)
    };
    let (fs, fm) = spread(TreeScheme::Flat);
    let (ss, sm) = spread(TreeScheme::ShiftedBinary);
    // relative spread comparison with slack: the claim is directional
    assert!(ss / sm <= 1.5 * fs / fm, "shifted rel-σ {} vs flat rel-σ {}", ss / sm, fs / fm);
}

/// The v0.7.3 model (no inter-supernode pipelining) must be slower than
/// the pipelined flat-tree code on the same machine — the paper's baseline
/// separation.
#[test]
fn barrier_mode_is_slower() {
    let layout = workload();
    let run = |pipelining| {
        let g =
            selinv_graph(&layout, &GraphOptions { scheme: TreeScheme::Flat, seed: 7, pipelining });
        simulate(&g, MachineConfig { seed: 0, ..Default::default() }).makespan
    };
    let pipelined = run(true);
    let barriered = run(false);
    assert!(
        barriered > pipelined,
        "barrier mode {barriered} not slower than pipelined {pipelined}"
    );
}

/// The factorization (SuperLU reference) and inversion graphs are both
/// executable on every scheme at every tested grid.
#[test]
fn graphs_execute_on_all_grids() {
    let w = gen::grid_laplacian_3d(5, 5, 4);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    for grid in [Grid2D::new(1, 1), Grid2D::new(3, 4), Grid2D::new(8, 8)] {
        let layout = Layout::new(sf.clone(), grid);
        for scheme in [TreeScheme::Flat, TreeScheme::ShiftedBinary] {
            let g = selinv_graph(&layout, &GraphOptions { scheme, seed: 3, pipelining: true });
            assert_eq!(g.validate(), g.num_tasks());
            let f = pselinv::dist::taskgraph::factorization_graph(
                &layout,
                &GraphOptions { scheme, seed: 3, pipelining: true },
            );
            assert_eq!(f.validate(), f.num_tasks());
        }
    }
}
